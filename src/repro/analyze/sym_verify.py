"""Symbolic translation validation: prove schedules correct without
running them.

:func:`symbolic_verify_schedule` sits between the dependence-DAG
pre-verifier (:func:`~repro.analyze.static_verify.static_verify_schedule`)
and the randomized differential battery
(:func:`~repro.core.verify.verify_schedule`) in the guard's gate chain.
Both sides of the reordering are executed symbolically
(:mod:`repro.analyze.symex`); if every register, condition code, ``%y``,
and the canonical memory snapshot normalize to identical terms, the two
orders are architecturally equivalent *on all inputs* and the dynamic
battery is skipped.

Verdict discipline — the asymmetry is deliberate:

* ``proven`` requires identity of every architectural term (or a
  definite identical trap on both sides). A proof subsumes the dynamic
  battery outright.
* ``refuted`` is only issued for structural violations (non-permutation,
  DAG violation — final for the same reason they are in the static
  pre-verifier) or when a **concrete witness** confirms a symbolic
  mismatch: the mismatching region is re-executed on seeded random
  states and actually diverges. The witness is packaged as a
  :class:`Counterexample` carrying both symbolic terms and the trial
  that exposed them.
* everything else — unsupported instructions, possible traps, term
  mismatches with no confirming witness (e.g. two renderings of the
  same value the simplifier cannot reconcile) — is ``inconclusive``
  and escalates to the dynamic battery. A correct schedule is never
  quarantined on symbolic evidence alone, so guarded output stays
  byte-identical to the unguarded scheduler's.

Delay-slot glue is handled the same way the scheduler pipeline handles
it: the sequences are split at control transfers
(:func:`~repro.core.regions.split_regions`), the CTI/delay skeleton must
match string-for-string, and each straight-line region is validated
independently. :func:`symbolic_masked_verify` is the superblock variant:
it compares only the registers live at a side-exit target (plus all of
memory and the condition state), mirroring
:func:`~repro.core.superblock.masked_differential`, and unlike the full
validator it accepts *non*-permutations — compensation code on the exit
path is exactly the case it exists for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.dependence import SchedulingPolicy, build_dependence_graph
from ..core.regions import split_regions
from ..core.verify import DEFAULT_SEED, _random_state, _recover_order
from ..isa.instruction import Instruction
from ..isa.machine_state import MachineState, MemoryFault
from ..isa.registers import RegKind
from ..isa.semantics import SemanticsError, run_straightline

#: Faults a witness run may legitimately raise: both orders faulting
#: identically is agreement (hardware traps either way), a one-sided
#: fault is itself the divergence witness.
_WITNESS_FAULTS = (SemanticsError, MemoryFault)
from .symex import (
    SymbolicState,
    SymbolicTrap,
    SymexUnsupported,
    Term,
    render_term,
    sym_run,
)


@dataclass(frozen=True)
class Counterexample:
    """A confirmed divergence: the symbolic terms that disagreed and the
    concrete trial that witnessed the disagreement."""

    location: str        # architectural slot, e.g. '%r5', 'icc_c', 'memory'
    original_term: str   # rendering of the original order's term
    scheduled_term: str  # rendering of the scheduled order's term
    trial: int           # witness trial index (reproducible from the seed)
    witness: str         # concrete divergence, e.g. 'original=3 scheduled=7'

    def __str__(self) -> str:
        return (
            f"{self.location}: original computes {self.original_term}, "
            f"schedule computes {self.scheduled_term} "
            f"(witness trial {self.trial}: {self.witness})"
        )


@dataclass(frozen=True)
class SymbolicVerdict:
    """Outcome of a symbolic equivalence proof."""

    status: str  # 'proven' | 'refuted' | 'inconclusive'
    reasons: tuple[str, ...] = ()
    counterexample: Counterexample | None = None

    @property
    def proven(self) -> bool:
        return self.status == "proven"

    @property
    def refuted(self) -> bool:
        return self.status == "refuted"

    @property
    def inconclusive(self) -> bool:
        return self.status == "inconclusive"

    def __bool__(self) -> bool:
        return self.proven


def _inconclusive(reason: str) -> SymbolicVerdict:
    return SymbolicVerdict("inconclusive", (reason,))


#: Condition-state slots compared between symbolic states.
_CC_SLOTS = ("icc_n", "icc_z", "icc_v", "icc_c", "fcc", "y")


def _compare_states(
    a: SymbolicState,
    b: SymbolicState,
    *,
    live_ints=None,
    live_fps=None,
) -> list[tuple[str, Term, Term]]:
    """(location, term_a, term_b) for every architectural slot whose
    terms differ. ``live_ints``/``live_fps`` restrict the register
    comparison (masked mode); memory and condition state always count."""
    mismatches: list[tuple[str, Term, Term]] = []
    for index in range(1, 32):
        if live_ints is not None and index not in live_ints:
            continue
        if a.regs[index] is not b.regs[index]:
            mismatches.append((f"%r{index}", a.regs[index], b.regs[index]))
    for index in range(32):
        if live_fps is not None and index not in live_fps:
            continue
        if a.fregs[index] is not b.fregs[index]:
            mismatches.append((f"%f{index}", a.fregs[index], b.fregs[index]))
    for slot in _CC_SLOTS:
        if getattr(a, slot) is not getattr(b, slot):
            mismatches.append((slot, getattr(a, slot), getattr(b, slot)))
    snap_a, snap_b = a.memory.snapshot(), b.memory.snapshot()
    if snap_a is not snap_b:
        mismatches.append(("memory", snap_a, snap_b))
    return mismatches


def _sym_states(
    body_a: list[Instruction],
    body_b: list[Instruction],
    policy: SchedulingPolicy,
) -> tuple[SymbolicState, SymbolicState] | SymbolicVerdict:
    """Symbolically execute both orders, or the verdict that stops us."""
    restrict = policy.restrict_instrumentation_memory
    traps: list[SymbolicTrap | None] = []
    states: list[SymbolicState] = []
    for body in (body_a, body_b):
        try:
            states.append(sym_run(SymbolicState(restrict_memory=restrict), body))
            traps.append(None)
        except SymbolicTrap as trap:
            states.append(None)
            traps.append(trap)
        except SymexUnsupported as exc:
            return _inconclusive(f"symbolic execution unsupported: {exc}")
    trap_a, trap_b = traps
    if trap_a is not None or trap_b is not None:
        # Two definite divide traps mirror the dynamic battery's
        # both-orders-trap outcome (which passes every trial); anything
        # else — a misalignment, a one-sided trap — escalates.
        if (
            trap_a is not None
            and trap_b is not None
            and trap_a.kind == "div-zero"
            and trap_b.kind == "div-zero"
        ):
            return SymbolicVerdict("proven")
        return _inconclusive(f"definite trap: {trap_a or trap_b}")
    return states[0], states[1]


def _concrete_witness(state: MachineState, location: str) -> str:
    """Render the concrete value at ``location`` after a witness run."""
    if location.startswith("%r"):
        return str(state.get_reg(int(location[2:])))
    if location.startswith("%f"):
        return hex(state.get_freg(int(location[2:])))
    if location == "memory":
        return "memory contents"
    return str(getattr(state, location))


def _witness_refutation(
    body_a: list[Instruction],
    body_b: list[Instruction],
    mismatches: list[tuple[str, Term, Term]],
    *,
    trials: int,
    seed: int,
    orig_base: int,
    instr_base: int,
) -> SymbolicVerdict | None:
    """Hunt for a concrete input confirming the symbolic mismatch; a
    refutation is only issued when one is found."""
    rng = random.Random(seed)
    location, term_a, term_b = mismatches[0]
    for trial in range(trials):
        state_a = _random_state(rng, orig_base=orig_base, instr_base=instr_base)
        state_b = state_a.copy()
        error_a = error_b = None
        try:
            run_straightline(state_a, body_a)
        except _WITNESS_FAULTS as exc:
            error_a = str(exc)
        try:
            run_straightline(state_b, body_b)
        except _WITNESS_FAULTS as exc:
            error_b = str(exc)
        if (error_a is None) != (error_b is None):
            counterexample = Counterexample(
                location=location,
                original_term=render_term(term_a),
                scheduled_term=render_term(term_b),
                trial=trial,
                witness=f"one order traps ({error_a or error_b}), the other does not",
            )
            return SymbolicVerdict(
                "refuted",
                (f"symbolic mismatch at {location}, confirmed by execution",),
                counterexample,
            )
        if error_a is not None:
            continue
        if not state_a.architectural_equal(state_b):
            # Report the divergence at the first symbolically-mismatched
            # slot whose concrete values actually differ this trial.
            for where, t_a, t_b in mismatches:
                value_a = _concrete_witness(state_a, where)
                value_b = _concrete_witness(state_b, where)
                if where == "memory" or value_a != value_b:
                    location, term_a, term_b = where, t_a, t_b
                    break
            else:
                value_a = _concrete_witness(state_a, location)
                value_b = _concrete_witness(state_b, location)
            counterexample = Counterexample(
                location=location,
                original_term=render_term(term_a),
                scheduled_term=render_term(term_b),
                trial=trial,
                witness=f"original={value_a} scheduled={value_b}",
            )
            return SymbolicVerdict(
                "refuted",
                (f"symbolic mismatch at {location}, confirmed by execution",),
                counterexample,
            )
    return None


def symbolic_verify_schedule(
    original: list[Instruction],
    scheduled: list[Instruction],
    *,
    policy: SchedulingPolicy | None = None,
    check_structure: bool = True,
    witness_trials: int = 3,
    seed: int = DEFAULT_SEED,
    orig_base: int = 0x0002_0000,
    instr_base: int = 0x0003_0000,
) -> SymbolicVerdict:
    """Prove (or refute, with a witness) that ``scheduled`` preserves
    ``original``'s architectural semantics.

    ``check_structure=False`` skips the permutation/DAG prechecks when a
    caller — the guard's gate chain — has already run them via
    :func:`~repro.analyze.static_verify.static_verify_schedule`.
    """
    policy = policy or SchedulingPolicy()

    if check_structure:
        # Structural refutations are final — identical to the dynamic
        # verifier's first two checks, same messages.
        if sorted(map(str, original)) != sorted(map(str, scheduled)):
            return SymbolicVerdict(
                "refuted", ("not a permutation of the original instructions",)
            )
        graph = build_dependence_graph(original, policy)
        order = _recover_order(original, scheduled)
        if order is None or not graph.is_valid_order(order):
            return SymbolicVerdict("refuted", ("violates the dependence DAG",))

    # Delay-slot glue: split both sequences at control transfers. The
    # CTI/delay skeleton must match exactly and instructions must not
    # have crossed a control transfer — the scheduler never moves them,
    # so a mismatch means we are looking at something out of domain.
    regions_a = split_regions(list(original))
    regions_b = split_regions(list(scheduled))
    if len(regions_a) != len(regions_b):
        return _inconclusive("control-transfer skeletons differ")
    for region_a, region_b in zip(regions_a, regions_b):
        if _pin_str(region_a.barrier) != _pin_str(region_b.barrier) or _pin_str(
            region_a.delay
        ) != _pin_str(region_b.delay):
            return _inconclusive("control-transfer skeletons differ")

    for region_a, region_b in zip(regions_a, regions_b):
        body_a = list(region_a.instructions)
        body_b = list(region_b.instructions)
        if [str(i) for i in body_a] == [str(i) for i in body_b]:
            continue  # textually identical: nothing to prove
        # No multiset precondition here: the executor compares *semantics*,
        # so even region bodies with different instruction populations
        # (corrupted input, or instructions moved across the CTI) are
        # judged on the terms they compute — a state difference at a
        # control transfer is architecturally observable.
        outcome = _sym_states(body_a, body_b, policy)
        if isinstance(outcome, SymbolicVerdict):
            if outcome.proven:
                continue
            return outcome
        mismatches = _compare_states(*outcome)
        if not mismatches:
            continue
        refutation = _witness_refutation(
            body_a,
            body_b,
            mismatches,
            trials=witness_trials,
            seed=seed,
            orig_base=orig_base,
            instr_base=instr_base,
        )
        if refutation is not None:
            return refutation
        location, term_a, term_b = mismatches[0]
        return _inconclusive(
            f"terms differ at {location} "
            f"({render_term(term_a, limit=120)} vs "
            f"{render_term(term_b, limit=120)}) with no confirming witness"
        )

    return SymbolicVerdict("proven")


def _pin_str(inst: Instruction | None) -> str | None:
    return None if inst is None else str(inst)


def symbolic_masked_verify(
    original: list[Instruction],
    scheduled: list[Instruction],
    live,
    *,
    policy: SchedulingPolicy | None = None,
    witness_trials: int = 3,
    seed: int = DEFAULT_SEED,
    orig_base: int = 0x0002_0000,
    instr_base: int = 0x0003_0000,
) -> SymbolicVerdict:
    """Masked-equivalence mode for superblock side exits.

    Compares only the integer/FP registers in ``live`` (the registers
    live at the side-exit target) plus all of memory, the condition
    codes, ``%y`` — the contract of
    :func:`~repro.core.superblock.masked_differential`. No permutation
    or DAG check: the scheduled side legitimately carries speculated and
    compensation code the original side lacks.
    """
    policy = policy or SchedulingPolicy()
    if any(i.is_control for i in original) or any(i.is_control for i in scheduled):
        return _inconclusive("masked validation requires straight-line code")
    live_ints = sorted(r.index for r in live if r.kind is RegKind.INT)
    live_fps = sorted(r.index for r in live if r.kind is RegKind.FP)
    outcome = _sym_states(list(original), list(scheduled), policy)
    if isinstance(outcome, SymbolicVerdict):
        return outcome
    mismatches = _compare_states(
        *outcome, live_ints=set(live_ints), live_fps=set(live_fps)
    )
    if not mismatches:
        return SymbolicVerdict("proven")
    # Witness hunt through the established masked differential; its
    # failures double as the refutation evidence.
    from ..core.superblock import masked_differential

    result = masked_differential(
        list(original),
        list(scheduled),
        live,
        trials=witness_trials,
        seed=seed,
        orig_base=orig_base,
        instr_base=instr_base,
    )
    location, term_a, term_b = mismatches[0]
    if not result.ok:
        counterexample = Counterexample(
            location=location,
            original_term=render_term(term_a),
            scheduled_term=render_term(term_b),
            trial=0,
            witness="; ".join(result.failures) or "masked differential diverged",
        )
        return SymbolicVerdict(
            "refuted",
            (f"masked symbolic mismatch at {location}, confirmed by execution",),
            counterexample,
        )
    return _inconclusive(
        f"masked terms differ at {location} with no confirming witness"
    )


__all__ = [
    "Counterexample",
    "SymbolicVerdict",
    "symbolic_masked_verify",
    "symbolic_verify_schedule",
]
