"""Description-category lints: SADL/Spawn machine descriptions.

These deepen the ad-hoc checks that ``spawn/validate.py`` grew over
PR 0-2 into registered rules (``spawn.validate_machine`` is now a thin
legacy wrapper over this module), and add three analyses only possible
with the description AST and the opcode table in hand:

* ``sadl/dead-unit`` — a declared ``unit`` no instruction ever acquires;
* ``sadl/dead-alternative`` — a ``?:`` semantic alternative whose
  condition is statically constant, so one arm can never match;
* ``isa/encoding-overlap`` — two opcodes whose mask/match bit patterns
  overlap in encoding space, i.e. some 32-bit word decodes ambiguously.

The context is built once (:func:`description_context`) and every rule
reads from it; resolving all instruction variants up front also means a
crashing evaluator surfaces as ``sadl/invalid-trace`` findings instead
of killing the lint run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Iterator, Mapping

from ..isa.opcodes import Category, Format, OpcodeInfo, all_mnemonics, lookup
from ..sadl import ast_nodes as ast
from ..sadl.trace import Trace
from .findings import Finding, Location
from .rules import record_findings, rule, run_rules, select_rules

#: Plausibility bound re-used from the legacy validator.
MAX_PIPELINE_CYCLES = 256


@dataclass
class DescriptionContext:
    """Everything the description rules read. Built once per lint run."""

    model: object
    filename: str | None
    require_full_isa: bool
    issue_unit: str | None
    #: (mnemonic, uses_imm, trace) for every resolvable variant.
    variants: list[tuple[str, bool, Trace]]
    #: mnemonics the description has no semantics for.
    missing: list[str]
    #: (mnemonic-or-None, message) for variants the evaluator rejected.
    trace_errors: list[tuple[str | None, str]]
    description: ast.Description | None
    opcode_table: Mapping[str, OpcodeInfo]

    def at(self, mnemonic: str | None = None, line: int | None = None) -> Location:
        return Location(file=self.filename, line=line, mnemonic=mnemonic)


def description_context(
    model,
    *,
    require_full_isa: bool = True,
    opcode_table: Mapping[str, OpcodeInfo] | None = None,
) -> DescriptionContext:
    """Resolve every instruction variant of ``model`` into a context."""
    from ..spawn.model import ModelError  # local: spawn imports us back

    variants: list[tuple[str, bool, Trace]] = []
    missing: list[str] = []
    trace_errors: list[tuple[str | None, str]] = []
    for mnemonic in all_mnemonics():
        if not model.evaluator.has_sem(mnemonic):
            missing.append(mnemonic)
            continue
        for uses_imm in (False, True):
            try:
                _, trace = model._variant(mnemonic, uses_imm)
            except ModelError as exc:
                # ModelError messages already name the mnemonic.
                trace_errors.append((None, str(exc)))
                continue
            variants.append((mnemonic, uses_imm, trace))
    description = getattr(model.evaluator, "description", None)
    filename = getattr(description, "filename", None)
    if opcode_table is None:
        opcode_table = {name: lookup(name) for name in all_mnemonics()}
    return DescriptionContext(
        model=model,
        filename=filename,
        require_full_isa=require_full_isa,
        issue_unit="Group" if "Group" in model.units else None,
        variants=variants,
        missing=missing,
        trace_errors=trace_errors,
        description=description,
        opcode_table=opcode_table,
    )


def lint_description(
    model,
    *,
    require_full_isa: bool = True,
    enable=None,
    disable=(),
    opcode_table: Mapping[str, OpcodeInfo] | None = None,
    recorder=None,
) -> list[Finding]:
    """Run the description-category rules over a compiled model."""
    context = description_context(
        model, require_full_isa=require_full_isa, opcode_table=opcode_table
    )
    rules = select_rules("description", enable=enable, disable=disable)
    return record_findings(run_rules(rules, context), recorder)


# -- the legacy validator's checks, as registered rules ---------------------------


@rule(
    "sadl/unbounded-width",
    category="description",
    severity="warning",
    summary="No 'Group' unit is declared, so superscalar width is unbounded.",
)
def _unbounded_width(ctx: DescriptionContext) -> Iterator[Finding]:
    if ctx.issue_unit is None:
        yield Finding(
            "sadl/unbounded-width",
            "warning",
            "no 'Group' unit declared: superscalar width is unbounded",
            ctx.at(),
            fix="declare e.g. `unit Group 4` and acquire it in cycle 0",
        )


@rule(
    "sadl/missing-semantics",
    category="description",
    severity="error",
    summary="A supported mnemonic has no semantics in the description.",
)
def _missing_semantics(ctx: DescriptionContext) -> Iterator[Finding]:
    if not ctx.require_full_isa:
        return
    for mnemonic in ctx.missing:
        yield Finding(
            "sadl/missing-semantics",
            "error",
            "no semantics in the description",
            ctx.at(mnemonic),
        )


@rule(
    "sadl/invalid-trace",
    category="description",
    severity="error",
    summary="The evaluator rejected an instruction variant's timing trace.",
)
def _invalid_trace(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, message in ctx.trace_errors:
        yield Finding("sadl/invalid-trace", "error", message, ctx.at(mnemonic))


@rule(
    "sadl/free-instruction",
    category="description",
    severity="warning",
    summary="An instruction acquires no units at all (free instruction).",
)
def _free_instruction(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, _, trace in ctx.variants:
        if not trace.acquires:
            yield Finding(
                "sadl/free-instruction",
                "warning",
                "acquires no units (free instruction)",
                ctx.at(mnemonic),
            )


@rule(
    "sadl/no-issue-slot",
    category="description",
    severity="error",
    summary="An instruction never acquires the issue unit in cycle 0.",
)
def _no_issue_slot(ctx: DescriptionContext) -> Iterator[Finding]:
    if ctx.issue_unit is None:
        return
    for mnemonic, _, trace in ctx.variants:
        if not any(
            e.unit == ctx.issue_unit and e.cycle == 0 for e in trace.acquires
        ):
            yield Finding(
                "sadl/no-issue-slot",
                "error",
                f"does not acquire {ctx.issue_unit!r} in cycle 0: it would "
                "bypass the issue-width limit",
                ctx.at(mnemonic),
            )


@rule(
    "sadl/unknown-unit",
    category="description",
    severity="error",
    summary="A trace acquires a unit the machine never declared.",
)
def _unknown_unit(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, _, trace in ctx.variants:
        for event in trace.acquires:
            if event.unit not in ctx.model.units:
                yield Finding(
                    "sadl/unknown-unit",
                    "error",
                    f"acquires unknown unit {event.unit!r}",
                    ctx.at(mnemonic),
                )


@rule(
    "sadl/capacity-overflow",
    category="description",
    severity="error",
    summary="A single acquire exceeds the unit's declared capacity.",
)
def _capacity_overflow(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, _, trace in ctx.variants:
        for event in trace.acquires:
            capacity = ctx.model.units.get(event.unit)
            if capacity is not None and event.count > capacity:
                yield Finding(
                    "sadl/capacity-overflow",
                    "error",
                    f"acquires {event.count} of unit {event.unit!r} but the "
                    f"machine only has {capacity}",
                    ctx.at(mnemonic),
                )


def _acquired_released(trace: Trace) -> tuple[dict[str, int], dict[str, int]]:
    acquired: dict[str, int] = {}
    for event in trace.acquires:
        acquired[event.unit] = acquired.get(event.unit, 0) + event.count
    released: dict[str, int] = {}
    for event in trace.releases:
        released[event.unit] = released.get(event.unit, 0) + event.count
    return acquired, released


@rule(
    "sadl/over-release",
    category="description",
    severity="error",
    summary="A trace releases more of a unit than it acquired.",
)
def _over_release(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, _, trace in ctx.variants:
        acquired, released = _acquired_released(trace)
        for unit, count in released.items():
            if count > acquired.get(unit, 0):
                yield Finding(
                    "sadl/over-release",
                    "error",
                    f"releases {count} of {unit!r} but acquires only "
                    f"{acquired.get(unit, 0)}",
                    ctx.at(mnemonic),
                )


@rule(
    "sadl/unit-leak",
    category="description",
    severity="error",
    summary="A trace acquires a unit it never fully releases (leak).",
)
def _unit_leak(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, _, trace in ctx.variants:
        acquired, released = _acquired_released(trace)
        for unit, count in acquired.items():
            if released.get(unit, 0) < count:
                yield Finding(
                    "sadl/unit-leak",
                    "error",
                    f"acquires {count} of {unit!r} but releases only "
                    f"{released.get(unit, 0)}: the unit leaks and will "
                    "eventually deadlock the pipeline",
                    ctx.at(mnemonic),
                    fix=f"add a matching R/AR release of {unit!r}",
                )


@rule(
    "sadl/read-after-retire",
    category="description",
    severity="error",
    summary="A register read is scheduled after the trace's final cycle.",
)
def _read_after_retire(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, _, trace in ctx.variants:
        for access in trace.reads:
            if access.cycle >= trace.cycles:
                yield Finding(
                    "sadl/read-after-retire",
                    "error",
                    f"reads {access.file}[{access.index}] in cycle "
                    f"{access.cycle} but the pipeline ends after cycle "
                    f"{trace.cycles - 1}",
                    ctx.at(mnemonic),
                )


@rule(
    "sadl/early-write",
    category="description",
    severity="error",
    summary="A written value is claimed usable before cycle 1.",
)
def _early_write(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, _, trace in ctx.variants:
        for access in trace.writes:
            if access.cycle < 1:
                yield Finding(
                    "sadl/early-write",
                    "error",
                    f"write of {access.file}[{access.index}] available in "
                    f"cycle {access.cycle}; values cannot be usable before "
                    "cycle 1 (computed at the end of cycle 0 at the "
                    "earliest)",
                    ctx.at(mnemonic),
                )


@rule(
    "sadl/pipeline-length",
    category="description",
    severity="error",
    summary="A trace's total cycle count is implausible (<1 or >256).",
)
def _pipeline_length(ctx: DescriptionContext) -> Iterator[Finding]:
    for mnemonic, _, trace in ctx.variants:
        if trace.cycles < 1 or trace.cycles > MAX_PIPELINE_CYCLES:
            yield Finding(
                "sadl/pipeline-length",
                "error",
                f"implausible pipeline length {trace.cycles}",
                ctx.at(mnemonic),
            )


# -- the new, AST/table-level analyses --------------------------------------------


@rule(
    "sadl/dead-unit",
    category="description",
    severity="warning",
    summary="A declared unit is never acquired by any instruction trace.",
)
def _dead_unit(ctx: DescriptionContext) -> Iterator[Finding]:
    acquired = {
        event.unit for _, _, trace in ctx.variants for event in trace.acquires
    }
    lines: dict[str, int | None] = {}
    if ctx.description is not None:
        for decl in ctx.description.declarations:
            if isinstance(decl, ast.UnitDecl):
                lines[decl.name] = decl.location.line
    for unit in sorted(ctx.model.units):
        if unit not in acquired:
            yield Finding(
                "sadl/dead-unit",
                "warning",
                f"unit {unit!r} is declared but no instruction ever "
                "acquires it",
                ctx.at(line=lines.get(unit)),
                fix=f"delete the `unit {unit}` declaration or acquire it",
            )


def _const_value(expr: ast.Expr) -> int | None:
    """The statically known value of ``expr``, or None."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Compare):
        left = _const_value(expr.left)
        right = _const_value(expr.right)
        if left is not None and right is not None:
            return int(left == right)
    return None


def _walk(node) -> Iterator[object]:
    """Every AST node reachable from ``node`` (dataclass fields, lists)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (list, tuple)):
            stack.extend(current)
            continue
        if not is_dataclass(current):
            continue
        yield current
        for f in fields(current):
            if f.name == "location":
                continue
            stack.append(getattr(current, f.name))


@rule(
    "sadl/dead-alternative",
    category="description",
    severity="warning",
    summary="A ?: semantic alternative has a constant condition, so one "
    "arm can never match.",
)
def _dead_alternative(ctx: DescriptionContext) -> Iterator[Finding]:
    if ctx.description is None:
        return
    for node in _walk(ctx.description):
        if not isinstance(node, ast.Ternary):
            continue
        value = _const_value(node.cond)
        if value is None:
            continue
        dead = "first" if value == 0 else "second"
        yield Finding(
            "sadl/dead-alternative",
            "warning",
            f"condition is always {'true' if value else 'false'}: the "
            f"{dead} alternative can never match",
            ctx.at(line=node.location.line),
            fix="replace the ?: with the live alternative",
        )


# Bit layouts of the SPARC V8 formats (isa/encode.py is the authority;
# the analyzer only needs which bits each format *fixes*).
_OP_MASK = 0xC000_0000
_OP2_MASK = 0x01C0_0000
_COND_MASK = 0x1E00_0000
_OP3_MASK = 0x01F8_0000
_OPF_MASK = 0x0000_3FE0


def encoding_pattern(info: OpcodeInfo) -> tuple[int, int] | None:
    """(mask, match) for the fixed bits of ``info``'s encoding, or None
    when the format is unknown to the analyzer."""
    fmt = info.fmt
    if fmt is Format.CALL:
        return _OP_MASK, 0x4000_0000
    if fmt is Format.SETHI:
        mask = _OP_MASK | _OP2_MASK
        match = 0b100 << 22
        if not info.operand_kinds:
            # No operand fields at all (nop): every other bit is a fixed
            # zero, so the pattern is fully determined.
            mask = 0xFFFF_FFFF
        return mask, match
    if fmt is Format.BRANCH:
        op2 = 0b110 if info.category is Category.FBRANCH else 0b010
        mask = _OP_MASK | _OP2_MASK | _COND_MASK
        return mask, (op2 << 22) | ((info.cond or 0) << 25)
    if fmt is Format.ARITH:
        return _OP_MASK | _OP3_MASK, (0b10 << 30) | ((info.op3 or 0) << 19)
    if fmt is Format.FPOP:
        mask = _OP_MASK | _OP3_MASK | _OPF_MASK
        return mask, (0b10 << 30) | ((info.op3 or 0) << 19) | ((info.opf or 0) << 5)
    if fmt is Format.MEM:
        return _OP_MASK | _OP3_MASK, (0b11 << 30) | ((info.op3 or 0) << 19)
    return None


def _overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
    common = a[0] & b[0]
    return (a[1] & common) == (b[1] & common)


def _strictly_refines(a: tuple[int, int], b: tuple[int, int]) -> bool:
    """``a`` matches a strict subset of the words ``b`` matches."""
    return (
        a[0] != b[0]
        and (a[0] & b[0]) == b[0]
        and (a[1] & b[0]) == b[1]
    )


@rule(
    "isa/encoding-overlap",
    category="description",
    severity="error",
    summary="Two opcodes' mask/match patterns overlap: some instruction "
    "word decodes ambiguously.",
)
def _encoding_overlap(ctx: DescriptionContext) -> Iterator[Finding]:
    patterns = [
        (name, pattern)
        for name, info in sorted(ctx.opcode_table.items())
        if (pattern := encoding_pattern(info)) is not None
    ]
    for i, (name_a, pat_a) in enumerate(patterns):
        for name_b, pat_b in patterns[i + 1 :]:
            if not _overlaps(pat_a, pat_b):
                continue
            # A strictly more specific pattern is legitimate decoder
            # specialization (nop is sethi with every field zero), not
            # an ambiguity.
            if _strictly_refines(pat_a, pat_b) or _strictly_refines(pat_b, pat_a):
                continue
            example = pat_a[1] | pat_b[1]
            yield Finding(
                "isa/encoding-overlap",
                "error",
                f"encoding overlaps {name_b!r}: word 0x{example:08x} "
                "matches both opcodes",
                ctx.at(name_a),
                fix="give one opcode a discriminating fixed field",
            )


__all__ = [
    "DescriptionContext",
    "description_context",
    "encoding_pattern",
    "lint_description",
]
