"""repro.analyze — static analysis over descriptions, images, and schedules.

Three things live here:

* a **lint framework** — :class:`Finding`, a rule registry with
  per-rule enable/disable (:func:`registered_rules`,
  :func:`select_rules`), and text/JSON/SARIF emitters;
* **rules** in two categories: ``description`` lints over SADL/Spawn
  machine descriptions (:func:`lint_description` — the deep form of
  :func:`repro.spawn.validate_machine`) and ``image`` lints over whole
  executables (:func:`lint_image` / :func:`lint_profiled` — cross-block
  hazards, delay-slot violations, instrumentation clobbering live
  registers);
* the **static pre-verifier** :func:`static_verify_schedule`, which
  proves schedule legality from the dependence DAG without execution
  and gates the guarded scheduler's differential battery.

CLI surface: ``qpt_cli lint``. Analyzer failures raise
:class:`repro.errors.AnalysisError`; findings about the analyzed input
are returned, never raised.
"""

from ..errors import AnalysisError
from .description_rules import (
    DescriptionContext,
    description_context,
    encoding_pattern,
    lint_description,
)
from .emit import render_text, summarize, to_json, to_sarif
from .findings import SEVERITIES, Finding, Location, severity_rank
from .image_rules import (
    RESERVED_SCRATCH,
    ImageContext,
    image_context,
    lint_image,
    lint_profiled,
)
from .rules import Rule, get_rule, registered_rules, rule, run_rules, select_rules
from .static_verify import StaticVerdict, static_verify_schedule

__all__ = [
    "AnalysisError",
    "DescriptionContext",
    "Finding",
    "ImageContext",
    "Location",
    "RESERVED_SCRATCH",
    "Rule",
    "SEVERITIES",
    "StaticVerdict",
    "description_context",
    "encoding_pattern",
    "get_rule",
    "image_context",
    "lint_description",
    "lint_image",
    "lint_profiled",
    "registered_rules",
    "render_text",
    "rule",
    "run_rules",
    "select_rules",
    "severity_rank",
    "static_verify_schedule",
    "summarize",
    "to_json",
    "to_sarif",
]
