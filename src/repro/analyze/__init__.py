"""repro.analyze — static analysis over descriptions, images, and schedules.

Three things live here:

* a **lint framework** — :class:`Finding`, a rule registry with
  per-rule enable/disable (:func:`registered_rules`,
  :func:`select_rules`), and text/JSON/SARIF emitters;
* **rules** in two categories: ``description`` lints over SADL/Spawn
  machine descriptions (:func:`lint_description` — the deep form of
  :func:`repro.spawn.validate_machine`) and ``image`` lints over whole
  executables (:func:`lint_image` / :func:`lint_profiled` — cross-block
  hazards, delay-slot violations, instrumentation clobbering live
  registers);
* the **static pre-verifier** :func:`static_verify_schedule`, which
  proves schedule legality from the dependence DAG without execution
  and gates the guarded scheduler's differential battery;
* the **symbolic translation validator** — a term-level executor over
  the ISA semantics (:mod:`repro.analyze.symex`) and, on top of it,
  :func:`symbolic_verify_schedule` / :func:`symbolic_masked_verify`,
  which prove architectural equivalence of a block and its reordering
  on *all* inputs (verdicts ``proven``/``refuted``/``inconclusive``,
  with a :class:`Counterexample` on refutation) — the guard's second
  gate, after the DAG and before the differential battery — plus the
  symex-powered image rules (:mod:`repro.analyze.symex_rules`).

CLI surface: ``qpt_cli lint``. Analyzer failures raise
:class:`repro.errors.AnalysisError`; findings about the analyzed input
are returned, never raised.
"""

from ..errors import AnalysisError
from .baseline import (
    BASELINE_VERSION,
    apply_baseline,
    finding_key,
    load_baseline,
    write_baseline,
)
from .description_rules import (
    DescriptionContext,
    description_context,
    encoding_pattern,
    lint_description,
)
from .emit import render_text, summarize, to_json, to_sarif
from .findings import SEVERITIES, Finding, Location, severity_rank
from .image_rules import (
    RESERVED_SCRATCH,
    ImageContext,
    image_context,
    lint_image,
    lint_profiled,
)
from .rules import Rule, get_rule, registered_rules, rule, run_rules, select_rules
from .static_verify import StaticVerdict, static_verify_schedule
from .sym_verify import (
    Counterexample,
    SymbolicVerdict,
    symbolic_masked_verify,
    symbolic_verify_schedule,
)
from . import symex_rules as _symex_rules  # noqa: F401 — registers image/* rules

__all__ = [
    "AnalysisError",
    "BASELINE_VERSION",
    "Counterexample",
    "DescriptionContext",
    "Finding",
    "ImageContext",
    "Location",
    "RESERVED_SCRATCH",
    "Rule",
    "SEVERITIES",
    "StaticVerdict",
    "SymbolicVerdict",
    "apply_baseline",
    "description_context",
    "encoding_pattern",
    "finding_key",
    "get_rule",
    "image_context",
    "lint_description",
    "lint_image",
    "load_baseline",
    "lint_profiled",
    "registered_rules",
    "render_text",
    "rule",
    "run_rules",
    "select_rules",
    "severity_rank",
    "static_verify_schedule",
    "summarize",
    "symbolic_masked_verify",
    "symbolic_verify_schedule",
    "to_json",
    "to_sarif",
    "write_baseline",
]
