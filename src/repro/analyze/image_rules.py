"""Image-category lints: whole-image static schedule analysis.

The scheduler (and its dynamic verifier) see one basic block at a time;
these rules see the whole CFG, so they catch exactly the hazard classes
a local scheduler can create but local verification cannot observe:

* ``image/cross-block-raw`` / ``image/cross-block-waw`` — a long-latency
  write whose latency *overhangs* the block boundary, with a successor
  that touches the register inside the overhang window;
* ``image/delay-slot-clobber`` — the delay-slot instruction writes a
  register its control transfer reads (evidence the slot was refilled
  past a dependence);
* ``image/clobber-live-register`` — an instrumentation instruction
  overwrites a register whose original value is still needed (read
  later by original code, or live-out of the block);
* ``image/unreachable-block`` — a block no edge or entry symbol reaches.

Hazard-overhang findings are informational: real code legitimately
starts a long-latency operation near a block's end and the hardware
interlocks stall; the finding localizes *where* stalls will surface.
The clobber rules are errors — they change architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..eel.cfg import CFG, BasicBlock, build_cfg
from ..eel.executable import Executable
from ..eel.liveness import LivenessAnalysis
from ..isa.registers import Reg, r
from .findings import Finding, Location
from .rules import record_findings, rule, run_rules, select_rules

#: The QPT ABI-reserved scratch registers (%g6/%g7): instrumentation may
#: always write them, so the clobber rule never flags them.
RESERVED_SCRATCH = frozenset((r(6), r(7)))


@dataclass
class ImageContext:
    """Everything the image rules read. Built once per lint run."""

    cfg: CFG
    liveness: LivenessAnalysis
    model: object | None
    path: str | None
    #: addresses reachable from outside the CFG (entry point, symbols).
    entries: frozenset[int]

    def at(self, block: BasicBlock) -> Location:
        return Location(file=self.path, block=block.index, address=block.address)


def image_context(
    subject: Executable | CFG,
    model=None,
    *,
    path: str | None = None,
) -> ImageContext:
    if isinstance(subject, CFG):
        cfg = subject
        entries = frozenset({cfg.entry.address})
    else:
        cfg = build_cfg(subject)
        entries = frozenset(
            {subject.entry} | {s.address for s in subject.function_symbols()}
        )
    return ImageContext(
        cfg=cfg,
        liveness=LivenessAnalysis(cfg),
        model=model,
        path=path,
        entries=entries,
    )


def lint_image(
    subject: Executable | CFG,
    model=None,
    *,
    path: str | None = None,
    enable=None,
    disable=(),
    recorder=None,
) -> list[Finding]:
    """Run the image-category rules over an executable or CFG."""
    context = image_context(subject, model, path=path)
    rules = select_rules("image", enable=enable, disable=disable)
    return record_findings(run_rules(rules, context), recorder)


def lint_profiled(
    profiled,
    model=None,
    *,
    path: str | None = None,
    enable=None,
    disable=(),
    recorder=None,
) -> list[Finding]:
    """Lint a :class:`~repro.qpt.profiling.ProfiledProgram` *before*
    encoding, over a shadow CFG whose blocks carry the editor's merged
    bodies (instrumentation tags intact — a decoded image has lost
    them, so the clobber rule only works here)."""
    editor = getattr(profiled, "editor", None)
    if editor is None:
        return lint_image(
            profiled.executable,
            model,
            path=path,
            enable=enable,
            disable=disable,
            recorder=recorder,
        )
    shadow = [
        BasicBlock(
            index=block.index,
            address=block.address,
            body=list(editor.block_body(block)),
            terminator=block.terminator,
            delay=block.delay,
            succs=list(block.succs),
            preds=list(block.preds),
            callee=block.callee,
        )
        for block in editor.cfg.blocks
    ]
    return lint_image(
        CFG(shadow, editor.cfg.entry_index),
        model,
        path=path,
        enable=enable,
        disable=disable,
        recorder=recorder,
    )


# -- cross-block hazard overhang --------------------------------------------------


def _write_overhangs(ctx: ImageContext, block: BasicBlock) -> Iterator[tuple[Reg, str, int]]:
    """(register, writing mnemonic, overhang) for every write whose
    latency extends past the block's last instruction, under a
    one-instruction-per-cycle issue approximation."""
    from ..spawn.model import ModelError

    sequence = block.instructions()
    for position, inst in enumerate(sequence):
        try:
            timing = ctx.model.timing(inst)
        except ModelError:
            continue
        for reg, cycle in timing.writes:
            if reg.is_zero:
                continue
            overhang = cycle - (len(sequence) - position)
            if overhang > 0:
                yield reg, inst.mnemonic, overhang


def _successor_hazard(
    successor: BasicBlock, reg: Reg, overhang: int
) -> str | None:
    """'raw' / 'waw' when ``successor`` touches ``reg`` inside the
    overhang window before the value settles, else None."""
    for position, inst in enumerate(successor.instructions()):
        if position >= overhang:
            return None
        if reg in inst.regs_read():
            return "raw"
        if reg in inst.regs_written():
            return "waw"
    return None


def _cross_block(ctx: ImageContext, kind: str) -> Iterator[Finding]:
    if ctx.model is None:
        return
    for block in ctx.cfg:
        for reg, mnemonic, overhang in _write_overhangs(ctx, block):
            for edge in block.succs:
                successor = ctx.cfg.blocks[edge.dst]
                if _successor_hazard(successor, reg, overhang) != kind:
                    continue
                verb = "reads" if kind == "raw" else "rewrites"
                yield Finding(
                    f"image/cross-block-{kind}",
                    "info",
                    f"{mnemonic} writes {reg.name} with {overhang} cycle(s) "
                    f"of latency left at the block boundary; block "
                    f"{successor.index} (0x{successor.address:x}, "
                    f"{edge.kind}) {verb} it inside that window",
                    ctx.at(block),
                )


@rule(
    "image/cross-block-raw",
    category="image",
    severity="info",
    summary="A write's latency overhangs the block boundary and a "
    "successor reads the register inside the window (interlock stall).",
)
def _cross_block_raw(ctx: ImageContext) -> Iterator[Finding]:
    yield from _cross_block(ctx, "raw")


@rule(
    "image/cross-block-waw",
    category="image",
    severity="info",
    summary="A write's latency overhangs the block boundary and a "
    "successor rewrites the register inside the window.",
)
def _cross_block_waw(ctx: ImageContext) -> Iterator[Finding]:
    yield from _cross_block(ctx, "waw")


# -- delay slots and instrumentation clobbers -------------------------------------


@rule(
    "image/delay-slot-clobber",
    category="image",
    severity="error",
    summary="The delay-slot instruction writes a register its control "
    "transfer reads: the slot was filled past a dependence.",
)
def _delay_slot_clobber(ctx: ImageContext) -> Iterator[Finding]:
    for block in ctx.cfg:
        terminator, delay = block.terminator, block.delay
        if terminator is None or delay is None:
            continue
        clobbered = delay.regs_written() & terminator.regs_read()
        for reg in sorted(clobbered):
            yield Finding(
                "image/delay-slot-clobber",
                "error",
                f"delay slot {delay.mnemonic} writes {reg.name}, which the "
                f"control transfer {terminator.mnemonic} reads",
                ctx.at(block),
                fix="keep the dependence-carrying instruction out of the "
                "delay slot",
            )


@rule(
    "image/clobber-live-register",
    category="image",
    severity="error",
    summary="An instrumentation instruction overwrites a register whose "
    "original value is still needed (read later or live-out).",
)
def _clobber_live_register(ctx: ImageContext) -> Iterator[Finding]:
    for block in ctx.cfg:
        sequence = block.instructions()
        live_out = ctx.liveness.live_out(block)
        for position, inst in enumerate(sequence):
            if not inst.is_instrumentation:
                continue
            for reg in sorted(inst.regs_written()):
                if reg in RESERVED_SCRATCH:
                    continue
                if _original_value_needed(sequence, position, reg, live_out):
                    yield Finding(
                        "image/clobber-live-register",
                        "error",
                        f"instrumentation {inst.mnemonic} overwrites "
                        f"{reg.name} while it is live",
                        ctx.at(block),
                        fix="pick a dead register "
                        "(LivenessAnalysis.dead_integer_registers) or the "
                        "reserved scratch registers",
                    )


def _original_value_needed(
    sequence: list, position: int, reg: Reg, live_out: frozenset[Reg]
) -> bool:
    """Was ``reg``'s pre-clobber value still needed at ``position``?

    True when original (non-instrumentation) code reads it later before
    any redefinition, or nothing redefines it and it is live-out.
    Instrumentation's own reads don't count — it reads the value it
    wrote itself.
    """
    for later in sequence[position + 1 :]:
        if reg in later.regs_read() and not later.is_instrumentation:
            return True
        if reg in later.regs_written():
            return False
    return reg in live_out


@rule(
    "image/unreachable-block",
    category="image",
    severity="info",
    summary="A block has no predecessors and no entry symbol: nothing "
    "can reach it.",
)
def _unreachable_block(ctx: ImageContext) -> Iterator[Finding]:
    for block in ctx.cfg:
        if block.preds or block.index == ctx.cfg.entry_index:
            continue
        if block.address in ctx.entries:
            continue
        yield Finding(
            "image/unreachable-block",
            "info",
            "no predecessors and no entry symbol: the block can never "
            "execute",
            ctx.at(block),
        )


__all__ = [
    "ImageContext",
    "RESERVED_SCRATCH",
    "image_context",
    "lint_image",
    "lint_profiled",
]
