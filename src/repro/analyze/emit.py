"""Finding emitters: plain text, JSON, and SARIF 2.1.0.

SARIF (the Static Analysis Results Interchange Format) is what code
hosts ingest for inline annotations; the CI ``lint`` job publishes it as
an artifact. The JSON form is a stable machine-readable shape for
scripts that don't want SARIF's nesting.
"""

from __future__ import annotations

from typing import Iterable

from .findings import SEVERITIES, Finding
from .rules import Rule, registered_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: finding severity -> SARIF result level
_SARIF_LEVELS = {"info": "note", "warning": "warning", "error": "error"}


def summarize(findings: Iterable[Finding]) -> dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] += 1
    return counts


def render_text(findings: list[Finding]) -> str:
    """Human-readable report, one finding per line plus a tally."""
    if not findings:
        return "clean: no findings"
    lines = [str(finding) for finding in findings]
    counts = summarize(findings)
    tally = ", ".join(
        f"{counts[sev]} {sev}" for sev in reversed(SEVERITIES) if counts[sev]
    )
    lines.append(f"{len(findings)} finding(s): {tally}")
    return "\n".join(lines)


def _location_dict(finding: Finding) -> dict:
    location = finding.location
    out = {}
    for key in ("file", "line", "mnemonic", "block", "address"):
        value = getattr(location, key)
        if value is not None:
            out[key] = value
    return out


def to_json(findings: list[Finding], *, rules: list[Rule] | None = None) -> dict:
    """A stable machine-readable dict (``json.dump`` it yourself)."""
    payload = {
        "version": 1,
        "summary": summarize(findings),
        "findings": [
            {
                "rule": finding.rule,
                "severity": finding.severity,
                "message": finding.message,
                "location": _location_dict(finding),
                **({"fix": finding.fix} if finding.fix else {}),
            }
            for finding in findings
        ],
    }
    if rules is not None:
        payload["rules"] = [r.id for r in rules]
    return payload


def to_sarif(
    findings: list[Finding],
    *,
    rules: list[Rule] | None = None,
    tool_name: str = "repro-analyze",
) -> dict:
    """SARIF 2.1.0 log with rule metadata and one result per finding."""
    if rules is None:
        present = {finding.rule for finding in findings}
        rules = [r for r in registered_rules() if r.id in present]
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
        }
        location = finding.location
        if location.file is not None:
            physical = {"artifactLocation": {"uri": location.file}}
            if location.line is not None:
                physical["region"] = {"startLine": location.line}
            result["locations"] = [{"physicalLocation": physical}]
        properties = _location_dict(finding)
        properties.pop("file", None)
        properties.pop("line", None)
        if finding.fix:
            properties["fix"] = finding.fix
        if properties:
            result["properties"] = properties
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": [
                            {
                                "id": r.id,
                                "shortDescription": {"text": r.summary},
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVELS[r.severity]
                                },
                                "properties": {"category": r.category},
                            }
                            for r in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


__all__ = ["SARIF_VERSION", "render_text", "summarize", "to_json", "to_sarif"]
