"""Image lint rules powered by the symbolic executor.

The dataflow facts the symbolic executor gathers while validating
schedules (:mod:`repro.analyze.symex`) double as lint evidence: a
constant zero divisor is a trap on *every* execution, a condition-code
definition overwritten before any reader is dead on every path through
the block, and a store exactly overwritten before any load could
observe it never mattered. Each rule symbolically executes block
*bodies* only — terminators and delay slots are control, outside the
executor's domain — so every claim is path-insensitive and sound:
nothing after the block can resurrect an intra-block shadowed value.

Blocks containing instructions the executor cannot model are skipped,
never guessed at. The executor runs under the *restrictive* aliasing
policy here (no instrumentation-disjointness axiom): lint findings
should rest on interval facts alone, not on scheduling assumptions.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator

from ..eel.cfg import BasicBlock
from .findings import Finding
from .image_rules import ImageContext
from .rules import rule
from .symex import SymbolicState, SymbolicTrap, SymexUnsupported, sym_execute


def _executed_body(
    block: BasicBlock,
) -> tuple[SymbolicState, SymbolicTrap | None] | None:
    """Symbolically execute ``block.body``; None when out of domain.

    A definite trap ends execution (as it would at runtime) but the
    state gathered up to the trap is still returned — a dead store
    before a guaranteed trap is still a dead store on the trap-free
    prefix semantics the other rules reason about."""
    state = SymbolicState(restrict_memory=True)
    for index, inst in enumerate(block.body):
        try:
            sym_execute(state, inst, index=index)
        except SymbolicTrap as trap:
            return state, trap
        except SymexUnsupported:
            return None
    return state, None


@rule(
    "image/guaranteed-trap",
    category="image",
    severity="warning",
    summary="an instruction traps on every execution of its block",
)
def _guaranteed_trap(ctx: ImageContext) -> Iterator[Finding]:
    """A constant zero divisor or a constant misaligned address does not
    depend on input: every execution reaching the block traps."""
    for block in ctx.cfg:
        outcome = _executed_body(block)
        if outcome is None:
            continue
        _, trap = outcome
        if trap is None:
            continue
        inst = block.body[trap.index]
        yield Finding(
            "image/guaranteed-trap",
            "warning",
            f"{inst.mnemonic} traps on every execution: {trap}",
            replace(ctx.at(block), mnemonic=inst.mnemonic),
            fix="guard the operation or remove the unreachable block",
        )


@rule(
    "image/dead-cc-def",
    category="image",
    severity="info",
    summary="condition codes defined, then overwritten before any reader",
)
def _dead_cc_def(ctx: ImageContext) -> Iterator[Finding]:
    """A ``cc``-setting instruction whose flags are overwritten by a
    later definition in the same block, with no intervening reader —
    the non-``cc`` form of the opcode does the same work without
    serializing against the condition codes."""
    for block in ctx.cfg:
        outcome = _executed_body(block)
        if outcome is None:
            continue
        state, _ = outcome
        for def_index, kill_index, which in state.dead_cc:
            inst = block.body[def_index]
            killer = block.body[kill_index]
            yield Finding(
                "image/dead-cc-def",
                "info",
                f"{inst.mnemonic} defines {which} flags that "
                f"{killer.mnemonic} overwrites before any reader",
                replace(ctx.at(block), mnemonic=inst.mnemonic),
                fix=f"use the non-cc form of {inst.mnemonic}",
            )


@rule(
    "image/dead-store",
    category="image",
    severity="info",
    summary="store exactly overwritten before any load could observe it",
)
def _dead_store(ctx: ImageContext) -> Iterator[Finding]:
    """Two stores to the *same symbolic address* with no possibly-
    aliasing access between them: the first value is never observable.
    Address equality is term identity, so this never fires on merely
    plausible aliases."""
    for block in ctx.cfg:
        outcome = _executed_body(block)
        if outcome is None:
            continue
        state, _ = outcome
        for store_index, kill_index in state.memory.dead_stores():
            inst = block.body[store_index]
            killer = block.body[kill_index]
            yield Finding(
                "image/dead-store",
                "info",
                f"{inst.mnemonic} is overwritten by {killer.mnemonic} "
                "before any load could observe it",
                replace(ctx.at(block), mnemonic=inst.mnemonic),
                fix="drop the first store",
            )


__all__ = ["_dead_cc_def", "_dead_store", "_guaranteed_trap"]
