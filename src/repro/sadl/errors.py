"""Diagnostics for the SADL toolchain.

Every error carries a source location so description authors get
compiler-style messages — the paper stresses that descriptions must be
easy to validate against architecture manuals.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import ReproError


@dataclass(frozen=True)
class SourceLocation:
    """A position in a SADL description file."""

    line: int
    column: int
    filename: str = "<sadl>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class SadlError(ReproError):
    """Base class for all SADL diagnostics."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        self.location = location
        self.message = message
        prefix = f"{location}: " if location else ""
        super().__init__(f"{prefix}{message}")


class SadlSyntaxError(SadlError):
    """Lexical or grammatical error in a description."""


class SadlEvalError(SadlError):
    """Semantic error while evaluating a description expression."""
