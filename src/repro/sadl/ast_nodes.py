"""Abstract syntax for SADL descriptions.

Declarations mirror the paper's four description aspects — pipeline
resources (``unit``), architectural registers (``register`` and
``alias``), reusable semantic fragments (``val``), and instruction
bindings (``sem``). Expressions are a small call-by-value lambda
language extended with the microarchitectural commands ``A``, ``R``,
``AR``, and ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SourceLocation


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    location: SourceLocation


@dataclass(frozen=True)
class Name(Expr):
    ident: str


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class UnitLit(Expr):
    """The unit value ``()``."""


@dataclass(frozen=True)
class FieldRef(Expr):
    """``#name`` — an immediate operand field of the instruction word."""

    name: str


@dataclass(frozen=True)
class ListExpr(Expr):
    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Lambda(Expr):
    param: str
    body: Expr


@dataclass(frozen=True)
class Apply(Expr):
    fn: Expr
    arg: Expr


@dataclass(frozen=True)
class Distribute(Expr):
    """``f @ [a b c]`` — apply ``f`` to each element, yielding a list."""

    fn: Expr
    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Index(Expr):
    """``base[index]`` — register-file or alias access."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class Seq(Expr):
    """Comma sequence; evaluates left to right, value is the last item.

    ``x := e`` items bind ``x`` for the remainder of the sequence.
    """

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Assign(Expr):
    """``lhs := rhs`` — local binding (lhs a name) or register write
    (lhs an indexed file/alias access)."""

    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass(frozen=True)
class Compare(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class CommandA(Expr):
    """``A <unit> [<num>]`` — acquire, stalling until available."""

    unit: Expr
    num: Expr | None


@dataclass(frozen=True)
class CommandR(Expr):
    """``R <unit> [<num>]`` — release."""

    unit: Expr
    num: Expr | None


@dataclass(frozen=True)
class CommandAR(Expr):
    """``AR <unit> [<num> [<delay>]]`` — acquire now, auto-release after
    ``delay`` cycles (default 1)."""

    unit: Expr
    num: Expr | None
    delay: Expr | None


@dataclass(frozen=True)
class CommandD(Expr):
    """``D [<delay>]`` — advance the pipeline ``delay`` cycles (default 1)."""

    delay: Expr | None


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeSpec:
    """``signed{32}`` / ``untyped{64}`` …"""

    base: str
    bits: int


@dataclass(frozen=True)
class Declaration:
    location: SourceLocation


@dataclass(frozen=True)
class UnitDecl(Declaration):
    name: str
    count: int


@dataclass(frozen=True)
class RegisterDecl(Declaration):
    typ: TypeSpec
    name: str
    size: int


@dataclass(frozen=True)
class AliasDecl(Declaration):
    typ: TypeSpec
    name: str
    param: str
    body: Expr


@dataclass(frozen=True)
class ValDecl(Declaration):
    names: tuple[str, ...]
    expr: Expr
    #: True when the declaration used the ``[n1 n2 …]`` list form, in
    #: which case the expression must evaluate to a same-length list
    #: (usually via ``@``) — or a single value bound to every name.
    is_list: bool


@dataclass(frozen=True)
class SemDecl(Declaration):
    mnemonics: tuple[str, ...]
    expr: Expr
    is_list: bool


@dataclass(frozen=True)
class Description:
    """A parsed SADL description file."""

    declarations: tuple[Declaration, ...]
    filename: str = "<sadl>"
