"""Runtime values for the SADL evaluator.

SADL is a tiny call-by-value lambda language whose evaluation has
*timing side effects*: executing a semantic expression does not compute
data (the data semantics live in :mod:`repro.isa.semantics`) — it emits
a :class:`Trace` of pipeline events. Data values are therefore symbolic
(:class:`VSym`), carrying only the relative cycle at whose end they were
computed, which is exactly what the paper says Spawn records for result
forwarding.

``val`` declarations behave as macros (:class:`VThunk`): their body is
re-evaluated at each use site, so a macro like Figure 2's ``multi``
(``AR Group, ()``) re-acquires an issue slot every time it is spliced
into an instruction's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .ast_nodes import AliasDecl, Expr, TypeSpec


class Value:
    """Base class for SADL runtime values."""


@dataclass(frozen=True)
class VUnitValue(Value):
    """The unit value ``()``."""

    def __repr__(self) -> str:
        return "()"


UNIT = VUnitValue()


@dataclass(frozen=True)
class VInt(Value):
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VSym(Value):
    """A symbolic data value: ``ready`` is the relative pipeline cycle at
    whose *end* the value exists (usable from cycle ``ready + 1``)."""

    ready: int

    def __repr__(self) -> str:
        return f"<data ready@{self.ready}>"


@dataclass(frozen=True)
class VFieldIndex(Value):
    """A symbolic register-number operand field (``rs1``, ``rs2``, ``rd``)."""

    name: str

    def __repr__(self) -> str:
        return f"<field {self.name}>"


@dataclass(frozen=True)
class VClosure(Value):
    param: str
    body: Expr
    env: "Environment"

    def __repr__(self) -> str:
        return f"<\\{self.param}. ...>"


@dataclass(frozen=True)
class VBuiltin(Value):
    """A curried builtin. ``fn`` runs once ``arity`` arguments are
    collected; it receives the evaluator so it can emit trace events."""

    name: str
    arity: int
    fn: Callable
    args: tuple[Value, ...] = ()

    def __repr__(self) -> str:
        return f"<builtin {self.name}/{self.arity}>"


@dataclass(frozen=True)
class VMarker(Value):
    """A flag marker like Figure 2's ``isShift`` — evaluating it in a
    sequence tags the instruction's trace."""

    name: str


@dataclass(frozen=True)
class VList(Value):
    items: tuple[Value, ...]


@dataclass(frozen=True)
class VUnitRef(Value):
    """A pipeline resource declared with ``unit``."""

    name: str


@dataclass(frozen=True)
class VFile(Value):
    """A register file declared with ``register``."""

    name: str
    size: int
    bits: int


@dataclass(frozen=True)
class VAlias(Value):
    decl: AliasDecl
    env: "Environment"

    def access_width(self, file: VFile) -> int:
        """How many physical registers one alias access spans (doubles
        span an even/odd pair on SPARC)."""
        return max(1, self.decl.typ.bits // file.bits)


@dataclass(frozen=True)
class VThunk(Value):
    """A ``val`` macro body, re-evaluated at each use.

    ``select`` is set for list-form declarations (``val [a b] is … @ […]``):
    it picks this name's element of the distributed result.
    """

    expr: Expr
    env: "Environment"
    select: int | None = None


@dataclass(frozen=True)
class VLValue(Value):
    """Internal: the destination of a register write."""

    file: VFile
    index: int | str
    width: int


class Environment:
    """A lexical environment chain."""

    __slots__ = ("_bindings", "_parent")

    def __init__(self, parent: "Environment | None" = None) -> None:
        self._bindings: dict[str, Value] = {}
        self._parent = parent

    def bind(self, name: str, value: Value) -> None:
        self._bindings[name] = value

    def lookup(self, name: str) -> Value | None:
        env: Environment | None = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        return None

    def child(self) -> "Environment":
        return Environment(self)
