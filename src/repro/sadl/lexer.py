"""Tokenizer for the Spawn Architecture Description Language.

SADL identifiers come in two flavours: alphanumeric names (``ALU``,
``multi``, ``add32``) and *operator names* — runs of symbol characters
like ``+`` or ``>>`` that descriptions bind with ``val`` and pass to
lambdas (see Figure 2 of the paper). Both lex to :data:`IDENT` tokens;
the reserved punctuation (``:=``, ``?``, ``:``, ``=``, ``\\``, ``.``,
``@``, ``#``, brackets, comma) is excluded from operator names.

Comments are ``//`` to end of line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SadlSyntaxError, SourceLocation


class TokenKind(enum.Enum):
    IDENT = "identifier"
    INT = "integer"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    ASSIGN = ":="
    QUESTION = "?"
    COLON = ":"
    EQUALS = "="
    LAMBDA = "\\"
    DOT = "."
    AT = "@"
    HASH = "#"
    EOF = "end of input"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation

    @property
    def int_value(self) -> int:
        return int(self.text, 0)

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"


_PUNCT = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    "?": TokenKind.QUESTION,
    "=": TokenKind.EQUALS,
    "\\": TokenKind.LAMBDA,
    ".": TokenKind.DOT,
    "@": TokenKind.AT,
    "#": TokenKind.HASH,
}

#: Characters that may form operator identifiers.
_OPERATOR_CHARS = set("+-*/&|^<>~!%")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str, filename: str = "<sadl>") -> list[Token]:
    """Tokenize ``source``, returning a token list ending with EOF."""
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(source)

    def loc() -> SourceLocation:
        return SourceLocation(line, col, filename)

    while i < n:
        ch = source[i]

        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue

        start = loc()

        if ch == ":":
            if i + 1 < n and source[i + 1] == "=":
                tokens.append(Token(TokenKind.ASSIGN, ":=", start))
                i += 2
                col += 2
            else:
                tokens.append(Token(TokenKind.COLON, ":", start))
                i += 1
                col += 1
            continue

        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, start))
            i += 1
            col += 1
            continue

        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            tokens.append(Token(TokenKind.INT, text, start))
            col += j - i
            i = j
            continue

        if _is_name_start(ch):
            j = i
            while j < n and _is_name_char(source[j]):
                j += 1
            text = source[i:j]
            tokens.append(Token(TokenKind.IDENT, text, start))
            col += j - i
            i = j
            continue

        if ch in _OPERATOR_CHARS:
            j = i
            while j < n and source[j] in _OPERATOR_CHARS:
                # Stop before a comment opener inside an operator run.
                if source.startswith("//", j):
                    break
                j += 1
            text = source[i:j]
            tokens.append(Token(TokenKind.IDENT, text, start))
            col += j - i
            i = j
            continue

        raise SadlSyntaxError(f"unexpected character {ch!r}", start)

    tokens.append(Token(TokenKind.EOF, "", loc()))
    return tokens
