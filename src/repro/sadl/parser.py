"""Recursive-descent parser for SADL.

The grammar (commas separate sequence steps, juxtaposition is function
application, ``@`` distributes a function over a list):

.. code-block:: text

   description := declaration*
   declaration := 'unit' IDENT INT (',' IDENT INT)*
                | 'register' type IDENT '[' INT ']'
                | 'alias' type IDENT '[' IDENT ']' 'is' expr
                | ('val' | 'sem') names 'is' expr
   type        := IDENT '{' INT '}'
   names       := IDENT | '[' IDENT+ ']'
   expr        := '\\' IDENT '.' expr | seq
   seq         := assign (',' assign)*
   assign      := ternary [':=' (lambda | ternary)]
   ternary     := compare ['?' ternary ':' ternary]
   compare     := app ['=' app]
   app         := postfix (postfix | '@' list)*
   postfix     := primary ('[' expr ']')*
   primary     := INT | '(' ')' | '(' expr ')' | '#' IDENT
                | command | IDENT
   command     := 'A' coperand [INT] | 'R' coperand [INT]
                | 'AR' coperand [INT [INT]] | 'D' [INT]

``A``/``R``/``AR``/``D`` are contextual keywords: ``A`` followed by an
identifier is an acquire command, while ``R[...]`` (followed by ``[``)
is an ordinary register-file access — this is exactly how the paper's
Figure 2 uses ``R`` for both the integer file and the release command.
"""

from __future__ import annotations

from .ast_nodes import (
    AliasDecl,
    Apply,
    Assign,
    CommandA,
    CommandAR,
    CommandD,
    CommandR,
    Compare,
    Declaration,
    Description,
    Distribute,
    Expr,
    FieldRef,
    Index,
    IntLit,
    Lambda,
    ListExpr,
    Name,
    RegisterDecl,
    SemDecl,
    Seq,
    Ternary,
    TypeSpec,
    UnitDecl,
    UnitLit,
    ValDecl,
)
from .errors import SadlSyntaxError
from .lexer import Token, TokenKind, tokenize

_DECL_KEYWORDS = {"unit", "register", "alias", "val", "sem"}
_RESERVED = _DECL_KEYWORDS | {"is"}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind, text: str | None = None) -> bool:
        token = self._peek()
        return token.kind is kind and (text is None or token.text == text)

    def _accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            want = text or kind.value
            raise SadlSyntaxError(
                f"expected {want!r}, found {token.text or token.kind.value!r}",
                token.location,
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        return self._expect(TokenKind.IDENT, word)

    # -- declarations -------------------------------------------------------

    def parse_description(self, filename: str = "<sadl>") -> Description:
        declarations: list[Declaration] = []
        while not self._check(TokenKind.EOF):
            declarations.extend(self._parse_declaration())
        return Description(tuple(declarations), filename)

    def _parse_declaration(self) -> list[Declaration]:
        token = self._peek()
        if token.kind is not TokenKind.IDENT or token.text not in _DECL_KEYWORDS:
            raise SadlSyntaxError(
                f"expected a declaration keyword, found {token.text!r}",
                token.location,
            )
        if token.text == "unit":
            return self._parse_unit()
        if token.text == "register":
            return [self._parse_register()]
        if token.text == "alias":
            return [self._parse_alias()]
        return [self._parse_val_or_sem(token.text)]

    def _parse_unit(self) -> list[Declaration]:
        keyword = self._expect_keyword("unit")
        decls: list[Declaration] = []
        while True:
            name = self._expect(TokenKind.IDENT)
            count = self._expect(TokenKind.INT)
            decls.append(UnitDecl(keyword.location, name.text, count.int_value))
            if not self._accept(TokenKind.COMMA):
                break
        return decls

    def _parse_type(self) -> TypeSpec:
        base = self._expect(TokenKind.IDENT)
        if base.text not in ("untyped", "signed", "unsigned", "float"):
            raise SadlSyntaxError(f"unknown type {base.text!r}", base.location)
        self._expect(TokenKind.LBRACE)
        bits = self._expect(TokenKind.INT)
        self._expect(TokenKind.RBRACE)
        return TypeSpec(base.text, bits.int_value)

    def _parse_register(self) -> Declaration:
        keyword = self._expect_keyword("register")
        typ = self._parse_type()
        name = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.LBRACKET)
        size = self._expect(TokenKind.INT)
        self._expect(TokenKind.RBRACKET)
        return RegisterDecl(keyword.location, typ, name.text, size.int_value)

    def _parse_alias(self) -> Declaration:
        keyword = self._expect_keyword("alias")
        typ = self._parse_type()
        name = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.LBRACKET)
        param = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.RBRACKET)
        self._expect_keyword("is")
        body = self.parse_expr()
        return AliasDecl(keyword.location, typ, name.text, param.text, body)

    def _parse_val_or_sem(self, which: str) -> Declaration:
        keyword = self._expect_keyword(which)
        names, is_list = self._parse_names()
        self._expect_keyword("is")
        expr = self.parse_expr()
        if which == "val":
            return ValDecl(keyword.location, names, expr, is_list)
        return SemDecl(keyword.location, names, expr, is_list)

    def _parse_names(self) -> tuple[tuple[str, ...], bool]:
        if self._accept(TokenKind.LBRACKET):
            names = []
            while not self._check(TokenKind.RBRACKET):
                names.append(self._expect(TokenKind.IDENT).text)
            self._expect(TokenKind.RBRACKET)
            if not names:
                raise SadlSyntaxError("empty name list", self._peek().location)
            return tuple(names), True
        return (self._expect(TokenKind.IDENT).text,), False

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> Expr:
        if self._check(TokenKind.LAMBDA):
            return self._parse_lambda()
        return self._parse_seq()

    def _parse_lambda(self) -> Expr:
        backslash = self._expect(TokenKind.LAMBDA)
        param = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.DOT)
        body = self.parse_expr()
        return Lambda(backslash.location, param.text, body)

    def _parse_seq(self) -> Expr:
        first = self._parse_assign()
        if not self._check(TokenKind.COMMA):
            return first
        items = [first]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_assign())
        return Seq(first.location, tuple(items))

    def _parse_assign(self) -> Expr:
        lhs = self._parse_ternary()
        if self._accept(TokenKind.ASSIGN):
            if self._check(TokenKind.LAMBDA):
                rhs = self._parse_lambda()
            else:
                rhs = self._parse_ternary()
            return Assign(lhs.location, lhs, rhs)
        return lhs

    def _parse_ternary(self) -> Expr:
        cond = self._parse_compare()
        if self._accept(TokenKind.QUESTION):
            then = self._parse_ternary()
            self._expect(TokenKind.COLON)
            otherwise = self._parse_ternary()
            return Ternary(cond.location, cond, then, otherwise)
        return cond

    def _parse_compare(self) -> Expr:
        left = self._parse_app()
        if self._accept(TokenKind.EQUALS):
            right = self._parse_app()
            return Compare(left.location, left, right)
        return left

    def _starts_primary(self) -> bool:
        token = self._peek()
        if token.kind in (TokenKind.INT, TokenKind.LPAREN, TokenKind.HASH):
            return True
        return token.kind is TokenKind.IDENT and token.text not in _RESERVED

    def _parse_app(self) -> Expr:
        expr = self._parse_postfix()
        while True:
            if self._check(TokenKind.AT):
                at = self._advance()
                items = self._parse_list()
                expr = Distribute(at.location, expr, items)
            elif self._starts_primary():
                arg = self._parse_postfix()
                expr = Apply(expr.location, expr, arg)
            else:
                return expr

    def _parse_list(self) -> tuple[Expr, ...]:
        self._expect(TokenKind.LBRACKET)
        items: list[Expr] = []
        while not self._check(TokenKind.RBRACKET):
            items.append(self._parse_postfix())
        self._expect(TokenKind.RBRACKET)
        return tuple(items)

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._check(TokenKind.LBRACKET):
            bracket = self._advance()
            index = self.parse_expr()
            self._expect(TokenKind.RBRACKET)
            expr = Index(bracket.location, expr, index)
        return expr

    # -- primaries and commands -----------------------------------------------

    def _parse_primary(self) -> Expr:
        token = self._peek()

        if token.kind is TokenKind.INT:
            self._advance()
            return IntLit(token.location, token.int_value)

        if token.kind is TokenKind.LPAREN:
            self._advance()
            if self._accept(TokenKind.RPAREN):
                return UnitLit(token.location)
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner

        if token.kind is TokenKind.HASH:
            self._advance()
            name = self._expect(TokenKind.IDENT)
            return FieldRef(token.location, name.text)

        if token.kind is TokenKind.IDENT:
            if token.text in _RESERVED:
                raise SadlSyntaxError(
                    f"unexpected keyword {token.text!r} in expression",
                    token.location,
                )
            command = self._try_parse_command()
            if command is not None:
                return command
            self._advance()
            return Name(token.location, token.text)

        raise SadlSyntaxError(
            f"unexpected {token.text or token.kind.value!r} in expression",
            token.location,
        )

    def _try_parse_command(self) -> Expr | None:
        token = self._peek()
        text = token.text
        if text in ("A", "R", "AR"):
            # A command only when followed by a unit name; 'R[' is the
            # integer register file.
            nxt = self._peek(1)
            if nxt.kind is not TokenKind.IDENT or nxt.text in _RESERVED:
                return None
            self._advance()
            unit = Name(self._peek().location, self._expect(TokenKind.IDENT).text)
            num = self._maybe_int()
            if text == "AR":
                delay = self._maybe_int() if num is not None else None
                return CommandAR(token.location, unit, num, delay)
            if text == "A":
                return CommandA(token.location, unit, num)
            return CommandR(token.location, unit, num)
        if text == "D":
            nxt = self._peek(1)
            if nxt.kind is TokenKind.INT:
                self._advance()
                delay = self._advance()
                return CommandD(token.location, IntLit(delay.location, delay.int_value))
            if nxt.kind in (
                TokenKind.COMMA,
                TokenKind.RPAREN,
                TokenKind.RBRACKET,
                TokenKind.EOF,
                TokenKind.QUESTION,
                TokenKind.COLON,
            ) or (nxt.kind is TokenKind.IDENT and nxt.text in _DECL_KEYWORDS):
                self._advance()
                return CommandD(token.location, None)
        return None

    def _maybe_int(self) -> Expr | None:
        if self._check(TokenKind.INT):
            token = self._advance()
            return IntLit(token.location, token.int_value)
        return None


def parse(source: str, filename: str = "<sadl>") -> Description:
    """Parse SADL source text into a :class:`Description`."""
    return Parser(tokenize(source, filename)).parse_description(filename)


def parse_expression(source: str, filename: str = "<expr>") -> Expr:
    """Parse a single SADL expression (used by tests and the REPL-style
    exploration in the examples)."""
    parser = Parser(tokenize(source, filename))
    expr = parser.parse_expr()
    token = parser._peek()
    if token.kind is not TokenKind.EOF:
        raise SadlSyntaxError(f"trailing input {token.text!r}", token.location)
    return expr
