"""SADL pretty-printer: AST back to parseable source.

Used by tooling that manipulates descriptions programmatically (the
synthetic-machine generator works textually; a future one could work on
ASTs) and by the round-trip property test pinning the parser: printing a
parse and re-parsing it must reach a fixed point.
"""

from __future__ import annotations

from .ast_nodes import (
    AliasDecl,
    Apply,
    Assign,
    CommandA,
    CommandAR,
    CommandD,
    CommandR,
    Compare,
    Declaration,
    Description,
    Distribute,
    Expr,
    FieldRef,
    Index,
    IntLit,
    Lambda,
    ListExpr,
    Name,
    RegisterDecl,
    SemDecl,
    Seq,
    Ternary,
    TypeSpec,
    UnitDecl,
    UnitLit,
    ValDecl,
)

# Precedence levels, loosest to tightest; used to decide parenthesization.
_SEQ, _ASSIGN, _TERNARY, _COMPARE, _APPLY, _ATOM = range(6)


def print_description(description: Description) -> str:
    lines = [_print_declaration(d) for d in description.declarations]
    return "\n".join(lines) + "\n"


def _print_declaration(decl: Declaration) -> str:
    if isinstance(decl, UnitDecl):
        return f"unit {decl.name} {decl.count}"
    if isinstance(decl, RegisterDecl):
        return f"register {_type(decl.typ)} {decl.name}[{decl.size}]"
    if isinstance(decl, AliasDecl):
        return (
            f"alias {_type(decl.typ)} {decl.name}[{decl.param}] "
            f"is {print_expr(decl.body)}"
        )
    if isinstance(decl, ValDecl):
        return f"val {_names(decl.names, decl.is_list)} is {print_expr(decl.expr)}"
    if isinstance(decl, SemDecl):
        return (
            f"sem {_names(decl.mnemonics, decl.is_list)} is {print_expr(decl.expr)}"
        )
    raise TypeError(f"unknown declaration {decl!r}")


def _type(typ: TypeSpec) -> str:
    return f"{typ.base}{{{typ.bits}}}"


def _names(names, is_list: bool) -> str:
    if is_list:
        return "[ " + " ".join(names) + " ]"
    return names[0]


def print_expr(expr: Expr) -> str:
    return _expr(expr, _SEQ)


def _expr(expr: Expr, level: int) -> str:
    text, this_level = _render(expr)
    if this_level < level:
        return f"({text})"
    return text


def _render(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, Name):
        return expr.ident, _ATOM
    if isinstance(expr, IntLit):
        return str(expr.value), _ATOM
    if isinstance(expr, UnitLit):
        return "()", _ATOM
    if isinstance(expr, FieldRef):
        return f"#{expr.name}", _ATOM
    if isinstance(expr, ListExpr):
        return "[ " + " ".join(_expr(i, _ATOM) for i in expr.items) + " ]", _ATOM
    if isinstance(expr, Lambda):
        return f"\\{expr.param}. {_expr(expr.body, _SEQ)}", _SEQ
    if isinstance(expr, Seq):
        return ", ".join(_expr(i, _ASSIGN) for i in expr.items), _SEQ
    if isinstance(expr, Assign):
        return (
            f"{_expr(expr.lhs, _TERNARY)} := {_expr(expr.rhs, _TERNARY)}",
            _ASSIGN,
        )
    if isinstance(expr, Ternary):
        return (
            f"{_expr(expr.cond, _COMPARE)} ? {_expr(expr.then, _TERNARY)} "
            f": {_expr(expr.otherwise, _TERNARY)}",
            _TERNARY,
        )
    if isinstance(expr, Compare):
        return (
            f"{_expr(expr.left, _APPLY)} = {_expr(expr.right, _APPLY)}",
            _COMPARE,
        )
    if isinstance(expr, Apply):
        return f"{_expr(expr.fn, _APPLY)} {_expr(expr.arg, _ATOM)}", _APPLY
    if isinstance(expr, Distribute):
        items = " ".join(_expr(i, _ATOM) for i in expr.items)
        return f"{_expr(expr.fn, _APPLY)} @ [ {items} ]", _APPLY
    if isinstance(expr, Index):
        return f"{_expr(expr.base, _ATOM)}[{_expr(expr.index, _SEQ)}]", _ATOM
    if isinstance(expr, CommandA):
        return _command("A", expr.unit, expr.num, None), _APPLY
    if isinstance(expr, CommandR):
        return _command("R", expr.unit, expr.num, None), _APPLY
    if isinstance(expr, CommandAR):
        return _command("AR", expr.unit, expr.num, expr.delay), _APPLY
    if isinstance(expr, CommandD):
        if expr.delay is None:
            return "D", _APPLY
        return f"D {_expr(expr.delay, _ATOM)}", _APPLY
    raise TypeError(f"unknown expression {expr!r}")


def _command(keyword: str, unit: Expr, num: Expr | None, delay: Expr | None) -> str:
    parts = [keyword, _expr(unit, _ATOM)]
    if num is not None:
        parts.append(_expr(num, _ATOM))
        if delay is not None:
            parts.append(_expr(delay, _ATOM))
    return " ".join(parts)
