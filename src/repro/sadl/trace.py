"""Timing traces — what evaluating a SADL semantic expression produces.

A :class:`Trace` is the paper's "complete map of an instruction's
actions as it moves through a processor's execution pipeline": per-cycle
resource acquire/release events plus the cycles at which architectural
registers are read and written. Register indices may be symbolic operand
field names (``"rs1"``) resolved against a concrete instruction at
scheduling time, or literal integers for implicit resources like the
condition codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class UnitEvent:
    """Acquire or release ``count`` copies of ``unit`` at relative ``cycle``."""

    unit: str
    count: int
    cycle: int


@dataclass(frozen=True)
class RegAccess:
    """A register-file access.

    For reads, ``cycle`` is the pipeline cycle in which the read occurs.
    For writes, ``cycle`` is the first cycle in which the value is usable
    by another instruction (the paper records the computation cycle; the
    value is available from the following cycle).
    """

    file: str
    index: int | str
    cycle: int
    width: int = 1


@dataclass
class Trace:
    """The complete pipeline behaviour of one instruction variant."""

    acquires: list[UnitEvent] = field(default_factory=list)
    releases: list[UnitEvent] = field(default_factory=list)
    reads: list[RegAccess] = field(default_factory=list)
    writes: list[RegAccess] = field(default_factory=list)
    flags: set[str] = field(default_factory=set)
    #: total cycles to pass through the pipeline (final cycle counter + 1).
    cycles: int = 1

    def signature(self) -> tuple:
        """A hashable identity used for timing-group formation: two
        instructions with equal signatures behave identically in the
        pipeline."""
        return (
            self.cycles,
            tuple(sorted((e.unit, e.count, e.cycle) for e in self.acquires)),
            tuple(sorted((e.unit, e.count, e.cycle) for e in self.releases)),
            tuple(sorted((a.file, str(a.index), a.cycle, a.width) for a in self.reads)),
            tuple(sorted((a.file, str(a.index), a.cycle, a.width) for a in self.writes)),
            tuple(sorted(self.flags)),
        )

    def acquires_at(self, cycle: int) -> list[UnitEvent]:
        return [e for e in self.acquires if e.cycle == cycle]

    def releases_at(self, cycle: int) -> list[UnitEvent]:
        return [e for e in self.releases if e.cycle == cycle]

    @property
    def max_event_cycle(self) -> int:
        cycles = [self.cycles - 1]
        cycles.extend(e.cycle for e in self.acquires)
        cycles.extend(e.cycle for e in self.releases)
        cycles.extend(a.cycle for a in self.reads)
        cycles.extend(a.cycle for a in self.writes)
        return max(cycles)
