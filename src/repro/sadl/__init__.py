"""SADL — the Spawn Architecture Description Language.

A small functional description language in which a machine's
instruction timing is written as executable semantic expressions
(paper §3). The package provides the lexer, parser, and the evaluator
that turns each instruction's ``sem`` expression into a
:class:`~repro.sadl.trace.Trace` of pipeline events.
"""

from .ast_nodes import Description
from .errors import SadlError, SadlEvalError, SadlSyntaxError, SourceLocation
from .evaluator import DescriptionEvaluator, REGISTER_FIELDS
from .lexer import Token, TokenKind, tokenize
from .parser import parse, parse_expression
from .printer import print_description, print_expr
from .trace import RegAccess, Trace, UnitEvent

__all__ = [
    "Description",
    "DescriptionEvaluator",
    "REGISTER_FIELDS",
    "RegAccess",
    "SadlError",
    "SadlEvalError",
    "SadlSyntaxError",
    "SourceLocation",
    "Token",
    "TokenKind",
    "Trace",
    "UnitEvent",
    "parse",
    "parse_expression",
    "print_description",
    "print_expr",
    "tokenize",
]
