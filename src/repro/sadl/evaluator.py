"""The SADL evaluator: from description to per-instruction timing traces.

Evaluating a ``sem`` expression *is* the timing model: ``D`` advances the
relative cycle counter, ``A``/``R``/``AR`` emit resource events, register
file and alias accesses emit read/write records, and data operators
produce symbolic values stamped with the cycle at whose end they were
computed. The paper's write-back rule — record when the value was
computed, not when the register assignment happens, because hardware
forwards — falls out of stamping writes with ``value.ready + 1``.

``val`` declarations are macros: each use re-evaluates the body, so
issue-slot acquisitions like Figure 2's ``multi`` happen once per
instruction, and field-dependent vals like ``src2`` resolve against the
instruction variant being traced (``iflag`` selects the immediate form).
"""

from __future__ import annotations

from .ast_nodes import (
    AliasDecl,
    Apply,
    Assign,
    CommandA,
    CommandAR,
    CommandD,
    CommandR,
    Compare,
    Description,
    Distribute,
    Expr,
    FieldRef,
    Index,
    IntLit,
    Lambda,
    ListExpr,
    Name,
    RegisterDecl,
    SemDecl,
    Seq,
    Ternary,
    UnitDecl,
    UnitLit,
    ValDecl,
)
from .errors import SadlEvalError
from .trace import RegAccess, Trace, UnitEvent
from .values import (
    UNIT,
    Environment,
    Value,
    VAlias,
    VBuiltin,
    VClosure,
    VFieldIndex,
    VFile,
    VInt,
    VList,
    VLValue,
    VMarker,
    VSym,
    VThunk,
    VUnitRef,
    VUnitValue,
)

#: Operand fields that hold register numbers; they stay symbolic in
#: traces and are resolved against a concrete instruction at
#: scheduling time.
REGISTER_FIELDS = ("rs1", "rs2", "rd")

#: Data operators available to descriptions; all emit a symbolic value
#: computed in the current cycle. The names only serve readability —
#: timing is carried by the surrounding A/R/AR/D commands.
_DATA_OPS = {
    1: [
        "hi22", "lo10", "neg32", "not32", "sign_extend",
        "fneg", "fabs", "fmov", "fsqrt",
        "fitos", "fitod", "fstod", "fdtos", "fstoi", "fdtoi",
    ],
    2: [
        "add32", "sub32", "and32", "or32", "xor32", "andn32", "orn32",
        "xnor32", "sll32", "srl32", "sra32", "mul32", "umul32", "div32",
        "udiv32", "addx32", "subx32", "ea", "fadd", "fsub", "fmul",
        "fdiv", "fcmp", "branch_on",
        "load32", "load64", "load8", "load16",
        "store32", "store64", "store8", "store16",
    ],
}

_MARKERS = ("isShift", "isLoad", "isStore", "isBranch", "isCall")


class DescriptionEvaluator:
    """Evaluates a parsed :class:`Description` and extracts timing traces."""

    def __init__(self, description: Description) -> None:
        self.description = description
        self.units: dict[str, int] = {}
        self.files: dict[str, VFile] = {}
        self._env = Environment()
        self._sems: dict[str, VThunk] = {}

        # Active-trace state.
        self._trace: Trace | None = None
        self._cycle = 0
        self._fields: dict[str, Value] = {}
        self._width_bits: list[int] = []

        self._install_builtins()
        self._load(description)

    # -- public API -----------------------------------------------------------

    def mnemonics(self) -> tuple[str, ...]:
        """All mnemonics the description gives semantics for."""
        return tuple(sorted(self._sems))

    def has_sem(self, mnemonic: str) -> bool:
        return mnemonic in self._sems

    def trace_for(self, mnemonic: str, fields: dict[str, int] | None = None) -> Trace:
        """Evaluate ``mnemonic``'s semantics and return its timing trace.

        ``fields`` supplies concrete values for decode-dependent flags,
        most importantly ``iflag`` (1 when the instruction uses an
        immediate second operand). Register-number fields stay symbolic.
        """
        thunk = self._sems.get(mnemonic)
        if thunk is None:
            raise SadlEvalError(f"no semantics for instruction {mnemonic!r}")

        self._trace = Trace()
        self._cycle = 0
        self._width_bits = []
        self._fields = {name: VFieldIndex(name) for name in REGISTER_FIELDS}
        self._fields["iflag"] = VInt(0)
        self._fields["aflag"] = VInt(0)
        for name, value in (fields or {}).items():
            self._fields[name] = VInt(value)

        try:
            self._eval_thunk(thunk)
        finally:
            trace = self._trace
            self._trace = None
        trace.cycles = self._cycle + 1
        return trace

    # -- loading ---------------------------------------------------------------

    def _install_builtins(self) -> None:
        def make_dataop(name: str, arity: int) -> VBuiltin:
            def run(evaluator: "DescriptionEvaluator", *args: Value) -> Value:
                return VSym(ready=evaluator._cycle)

            return VBuiltin(name, arity, run)

        for arity, names in _DATA_OPS.items():
            for name in names:
                self._env.bind(name, make_dataop(name, arity))
        for name in _MARKERS:
            self._env.bind(name, VMarker(name))

    def _load(self, description: Description) -> None:
        for decl in description.declarations:
            if isinstance(decl, UnitDecl):
                if decl.name in self.units:
                    raise SadlEvalError(f"duplicate unit {decl.name!r}", decl.location)
                self.units[decl.name] = decl.count
                self._env.bind(decl.name, VUnitRef(decl.name))
            elif isinstance(decl, RegisterDecl):
                vfile = VFile(decl.name, decl.size, decl.typ.bits)
                self.files[decl.name] = vfile
                self._env.bind(decl.name, vfile)
            elif isinstance(decl, AliasDecl):
                self._env.bind(decl.name, VAlias(decl, self._env))
            elif isinstance(decl, ValDecl):
                self._bind_names(decl.names, decl.expr, decl.is_list, self._env.bind)
            elif isinstance(decl, SemDecl):
                self._bind_names(
                    decl.mnemonics, decl.expr, decl.is_list, self._bind_sem
                )
            else:  # pragma: no cover
                raise SadlEvalError(f"unknown declaration {decl!r}", decl.location)

    def _bind_sem(self, name: str, thunk: Value) -> None:
        self._sems[name] = thunk

    def _bind_names(self, names, expr: Expr, is_list: bool, bind) -> None:
        if not is_list:
            bind(names[0], VThunk(expr, self._env))
            return
        if isinstance(expr, Distribute) and len(expr.items) != len(names):
            raise SadlEvalError(
                f"{len(names)} names but {len(expr.items)} distributed values",
                expr.location,
            )
        for j, name in enumerate(names):
            bind(name, VThunk(expr, self._env, select=j))

    # -- thunks -----------------------------------------------------------------

    def _eval_thunk(self, thunk: VThunk) -> Value:
        if thunk.select is not None and isinstance(thunk.expr, Distribute):
            call = Apply(
                thunk.expr.location, thunk.expr.fn, thunk.expr.items[thunk.select]
            )
            return self._eval(call, thunk.env)
        value = self._eval(thunk.expr, thunk.env)
        if thunk.select is not None and isinstance(value, VList):
            return value.items[thunk.select]
        # A list-form declaration without a distributed result shares one
        # expression across all names (e.g. ``sem [ one two ] is …``).
        return value

    # -- expression evaluation -----------------------------------------------------

    def _eval(self, expr: Expr, env: Environment) -> Value:
        method = getattr(self, f"_eval_{type(expr).__name__}")
        return method(expr, env)

    def _eval_Name(self, expr: Name, env: Environment) -> Value:
        value = env.lookup(expr.ident)
        if value is None:
            value = self._fields.get(expr.ident)
        if value is None:
            raise SadlEvalError(f"unbound name {expr.ident!r}", expr.location)
        if isinstance(value, VThunk):
            return self._eval_thunk(value)
        return value

    def _eval_IntLit(self, expr: IntLit, env: Environment) -> Value:
        return VInt(expr.value)

    def _eval_UnitLit(self, expr: UnitLit, env: Environment) -> Value:
        return UNIT

    def _eval_FieldRef(self, expr: FieldRef, env: Environment) -> Value:
        # An immediate operand: present in the instruction word, so its
        # value exists from the moment the instruction issues.
        return VSym(ready=self._cycle)

    def _eval_ListExpr(self, expr: ListExpr, env: Environment) -> Value:
        return VList(tuple(self._eval(item, env) for item in expr.items))

    def _eval_Lambda(self, expr: Lambda, env: Environment) -> Value:
        return VClosure(expr.param, expr.body, env)

    def _eval_Apply(self, expr: Apply, env: Environment) -> Value:
        fn = self._eval(expr.fn, env)
        arg = self._eval(expr.arg, env)
        return self._apply(fn, arg, expr)

    def _apply(self, fn: Value, arg: Value, expr: Expr) -> Value:
        if isinstance(fn, VClosure):
            child = fn.env.child()
            child.bind(fn.param, arg)
            return self._eval(fn.body, child)
        if isinstance(fn, VBuiltin):
            args = fn.args + (arg,)
            if len(args) == fn.arity:
                return fn.fn(self, *args)
            return VBuiltin(fn.name, fn.arity, fn.fn, args)
        raise SadlEvalError(f"cannot apply {fn!r}", expr.location)

    def _eval_Distribute(self, expr: Distribute, env: Environment) -> Value:
        fn = self._eval(expr.fn, env)
        results = []
        for item in expr.items:
            results.append(self._apply(fn, self._eval(item, env), expr))
        return VList(tuple(results))

    def _eval_Seq(self, expr: Seq, env: Environment) -> Value:
        child = env.child()
        value: Value = UNIT
        for item in expr.items:
            value = self._eval(item, child)
            if isinstance(value, VMarker):
                self._require_trace(expr).flags.add(value.name)
                value = UNIT
        return value

    def _eval_Assign(self, expr: Assign, env: Environment) -> Value:
        rhs = self._eval(expr.rhs, env)
        if isinstance(expr.lhs, Name):
            env.bind(expr.lhs.ident, rhs)
            return rhs
        lvalue = self._eval_lvalue(expr.lhs, env)
        ready = rhs.ready if isinstance(rhs, VSym) else self._cycle
        self._require_trace(expr).writes.append(
            RegAccess(
                file=lvalue.file.name,
                index=lvalue.index,
                cycle=ready + 1,
                width=lvalue.width,
            )
        )
        return rhs

    def _eval_Ternary(self, expr: Ternary, env: Environment) -> Value:
        cond = self._eval(expr.cond, env)
        if not isinstance(cond, VInt):
            raise SadlEvalError(
                f"condition must be an integer, got {cond!r}", expr.location
            )
        branch = expr.then if cond.value else expr.otherwise
        return self._eval(branch, env)

    def _eval_Compare(self, expr: Compare, env: Environment) -> Value:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if isinstance(left, VInt) and isinstance(right, VInt):
            return VInt(int(left.value == right.value))
        raise SadlEvalError(
            "comparison requires concrete integers (decode-time fields)",
            expr.location,
        )

    # -- register accesses -----------------------------------------------------------

    def _eval_Index(self, expr: Index, env: Environment) -> Value:
        base = self._eval(expr.base, env)
        if isinstance(base, VList):
            index = self._eval(expr.index, env)
            if not isinstance(index, VInt):
                raise SadlEvalError("list index must be an integer", expr.location)
            return base.items[index.value]
        if isinstance(base, VFile):
            index = self._index_value(self._eval(expr.index, env), expr)
            width = self._current_width(base)
            self._require_trace(expr).reads.append(
                RegAccess(file=base.name, index=index, cycle=self._cycle, width=width)
            )
            return VSym(ready=self._cycle)
        if isinstance(base, VAlias):
            return self._eval_alias(base, expr, env, lvalue=False)
        raise SadlEvalError(f"cannot index {base!r}", expr.location)

    def _eval_alias(
        self, alias: VAlias, expr: Index, env: Environment, *, lvalue: bool
    ) -> Value:
        index = self._eval(expr.index, env)
        child = alias.env.child()
        child.bind(alias.decl.param, index)
        self._width_bits.append(alias.decl.typ.bits)
        try:
            if lvalue:
                return self._lvalue_of_body(alias.decl.body, child)
            return self._eval(alias.decl.body, child)
        finally:
            self._width_bits.pop()

    def _lvalue_of_body(self, body: Expr, env: Environment) -> VLValue:
        """Evaluate an alias body for writing: run every step normally
        except the final register access, which becomes the destination."""
        if isinstance(body, Seq):
            child = env.child()
            for item in body.items[:-1]:
                value = self._eval(item, child)
                if isinstance(value, VMarker):
                    self._require_trace(body).flags.add(value.name)
            return self._eval_lvalue(body.items[-1], child)
        return self._eval_lvalue(body, env)

    def _eval_lvalue(self, expr: Expr, env: Environment) -> VLValue:
        if isinstance(expr, Index):
            base = self._eval(expr.base, env)
            if isinstance(base, VFile):
                index = self._index_value(self._eval(expr.index, env), expr)
                return VLValue(base, index, self._current_width(base))
            if isinstance(base, VAlias):
                result = self._eval_alias(base, expr, env, lvalue=True)
                if isinstance(result, VLValue):
                    return result
        raise SadlEvalError("invalid assignment target", expr.location)

    def _index_value(self, value: Value, expr: Expr) -> int | str:
        if isinstance(value, VInt):
            return value.value
        if isinstance(value, VFieldIndex):
            return value.name
        raise SadlEvalError(f"invalid register index {value!r}", expr.location)

    def _current_width(self, vfile: VFile) -> int:
        if not self._width_bits:
            return 1
        return max(1, self._width_bits[-1] // vfile.bits)

    # -- commands -----------------------------------------------------------------------

    def _unit_name(self, expr: Expr, env: Environment) -> str:
        value = self._eval(expr, env)
        if isinstance(value, VUnitRef):
            return value.name
        raise SadlEvalError(f"expected a unit, got {value!r}", expr.location)

    def _count(self, expr: Expr | None, env: Environment, default: int = 1) -> int:
        if expr is None:
            return default
        value = self._eval(expr, env)
        if isinstance(value, VInt):
            return value.value
        raise SadlEvalError(f"expected an integer, got {value!r}", expr.location)

    def _eval_CommandA(self, expr: CommandA, env: Environment) -> Value:
        unit = self._unit_name(expr.unit, env)
        self._check_unit(unit, expr)
        count = self._count(expr.num, env)
        self._require_trace(expr).acquires.append(UnitEvent(unit, count, self._cycle))
        return UNIT

    def _eval_CommandR(self, expr: CommandR, env: Environment) -> Value:
        unit = self._unit_name(expr.unit, env)
        self._check_unit(unit, expr)
        count = self._count(expr.num, env)
        self._require_trace(expr).releases.append(UnitEvent(unit, count, self._cycle))
        return UNIT

    def _eval_CommandAR(self, expr: CommandAR, env: Environment) -> Value:
        unit = self._unit_name(expr.unit, env)
        self._check_unit(unit, expr)
        count = self._count(expr.num, env)
        delay = self._count(expr.delay, env)
        trace = self._require_trace(expr)
        trace.acquires.append(UnitEvent(unit, count, self._cycle))
        trace.releases.append(UnitEvent(unit, count, self._cycle + delay))
        return UNIT

    def _eval_CommandD(self, expr: CommandD, env: Environment) -> Value:
        self._cycle += self._count(expr.delay, env)
        return UNIT

    def _check_unit(self, unit: str, expr: Expr) -> None:
        if unit not in self.units:
            raise SadlEvalError(f"undeclared unit {unit!r}", expr.location)

    def _require_trace(self, expr: Expr) -> Trace:
        if self._trace is None:
            raise SadlEvalError(
                "timing command evaluated outside an instruction trace "
                "(vals with side effects must be used from sem bodies)",
                expr.location,
            )
        return self._trace
