"""Content addressing for schedulable regions.

A schedule is a pure function of three inputs: the region's instruction
sequence, the machine model, and the scheduling policy. The cache key
therefore has two parts:

* a **context digest** (:func:`context_digest`) naming the (model,
  policy) pair — model identity is the model's class, name, and a hash
  of its SADL source when available, so a corrupted or merely renamed
  model can never alias a healthy one;
* a **region digest** (:func:`region_digest`) over the instruction
  words after *register-renaming canonicalization*
  (:func:`canonical_region`).

Canonicalization maps work registers to dense indices in first-use
order, separately for the integer and floating-point files, so two
blocks that differ only by a bijective renaming of their registers
share one cache entry. This is sound because every quantity the
scheduler computes — the dependence DAG, pipeline stall counts, issue
cycles — depends on registers only through their *equality structure*
(which operands name the same register), which a bijection preserves.
Three guards keep the bijection argument airtight:

* ``%g0`` is pinned: it is hard-wired zero, never participates in a
  dependence, and renaming it (or onto it) would change the DAG;
* regions containing any double-word memory operation
  (``fp_width == 2``: ``ldd``/``std``/``lddf``/``stdf``) are *not*
  renamed at all — those instructions access ``reg`` and ``reg+1``, an
  adjacency relation an arbitrary bijection does not preserve;
* every other field that can influence scheduling — mnemonic,
  immediate, annul bit, symbolic target, and the provenance ``tag``
  that drives the memory-aliasing policy — is kept verbatim, so two
  regions differing in a single immediate or in instrumentation
  provenance can never collide.

``seq`` is deliberately excluded: the forward pass tie-breaks on the
instruction's *position within the region*, not the global ``seq``
field, so ``seq`` cannot influence the schedule.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from ..core.dependence import SchedulingPolicy
from ..isa.instruction import Instruction
from ..isa.registers import Reg, RegKind
from ..spawn.model import MachineModel

#: Register kinds eligible for renaming. Special resources (condition
#: codes, %y, %pc) never appear as explicit operands.
_RENAMABLE = (RegKind.INT, RegKind.FP)


def _renaming_allowed(region: Sequence[Instruction]) -> bool:
    """False when any instruction performs a double-word access —
    renaming must then be skipped to preserve ``reg``/``reg+1``
    adjacency."""
    return all(inst.info.fp_width != 2 for inst in region)


def canonical_region(region: Sequence[Instruction]) -> tuple:
    """The canonical (renaming-invariant) form of a straight-line region.

    This runs three times per unique region in a parallel build
    (collect-time dedup, the worker's self-authenticating digest, the
    layout pass's cache probe), so the operand loop is written flat —
    local-variable lookups and an explicit renaming dict — rather than
    through a per-operand closure.
    """
    rename = _renaming_allowed(region)
    # Keyed by the *canonical per-register pair*; maps to its renamed
    # pair. %g0 keeps index 0; other integer registers number from 1.
    mapping: dict[tuple, tuple] = {}
    next_index = {RegKind.INT.value: 1, RegKind.FP.value: 0}
    renamable = frozenset(kind.value for kind in _RENAMABLE)
    out = []
    for inst in region:
        row = [inst.mnemonic, None, None, None]
        for slot, reg in ((1, inst.rd), (2, inst.rs1), (3, inst.rs2)):
            if reg is None:
                continue
            kind = reg.kind.value
            concrete = (kind, reg.index)
            if not rename or kind not in renamable or reg.is_zero:
                row[slot] = concrete
                continue
            canonical = mapping.get(concrete)
            if canonical is None:
                index = next_index[kind]
                next_index[kind] = index + 1
                canonical = (kind, index)
                mapping[concrete] = canonical
            row[slot] = canonical
        row += (inst.imm, inst.annul, inst.target, inst.tag)
        out.append(tuple(row))
    return tuple(out)


def region_digest(region: Sequence[Instruction]) -> str:
    """Hex digest of the canonical region — the content address."""
    return hashlib.sha256(repr(canonical_region(region)).encode()).hexdigest()


def model_identity(model) -> str:
    """A string naming a machine model for cache keying.

    Includes the model's concrete class (a
    :class:`~repro.robust.faults.CorruptedModel` must never alias its
    base), its name, its unit inventory, and — when the model records
    the SADL source it was compiled from — a digest of that source, so
    two models built from different descriptions never share entries
    even if they share a name.
    """
    parts = [type(model).__qualname__, getattr(model, "name", "?")]
    units = getattr(model, "units", None)
    if units:
        parts.append(",".join(f"{u}={c}" for u, c in sorted(units.items())))
    source = None
    if type(model) is MachineModel:
        # Only trust `source` on a plain MachineModel: proxy models
        # (CorruptedModel) delegate attribute access to their base, and
        # inheriting the base's source would let a corrupted model alias
        # the healthy one.
        source = getattr(model, "source", None)
    if source is not None:
        parts.append(hashlib.sha256(source.encode()).hexdigest()[:16])
    else:
        # No verifiable content: key on object identity so distinct
        # instances never share entries.
        parts.append(f"id{id(model):x}")
    return ":".join(parts)


def policy_identity(policy: SchedulingPolicy | None) -> str:
    return repr(policy or SchedulingPolicy())


def model_digest(model) -> str:
    """Short hex digest of :func:`model_identity` — what ledger records
    store (the identity string itself can be long and, for sourceless
    models, embeds a process-local object id)."""
    return hashlib.sha256(model_identity(model).encode()).hexdigest()[:16]


def policy_digest(policy: SchedulingPolicy | None) -> str:
    """Short hex digest of :func:`policy_identity`, for ledger records."""
    return hashlib.sha256(policy_identity(policy).encode()).hexdigest()[:16]


def context_digest(model, policy: SchedulingPolicy | None) -> str:
    """Digest of the (machine model, scheduler options) pair."""
    text = model_identity(model) + "|" + policy_identity(policy)
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def apply_order(
    region: Sequence[Instruction], order: Iterable[int]
) -> list[Instruction]:
    """Replay a cached permutation against concrete instructions."""
    return [region[i] for i in order]


def schedule_checksum(
    subject: str,
    order: Sequence[int],
    original_cycles: int,
    scheduled_cycles: int,
    verified: bool,
) -> str:
    """Integrity checksum binding a schedule result to its subject.

    ``subject`` names what the result is *for* (a region digest, or
    ``context:region`` for a cache entry). Anything that mutates the
    payload after the checksum was computed — a bit flip in a persisted
    cache entry, a corrupted IPC message from a worker process — makes
    the stored checksum stale, so recomputation at the consumer side
    detects the tamper. This is an integrity check against accidental
    corruption, not an authentication scheme.
    """
    payload = (
        subject,
        tuple(int(i) for i in order),
        int(original_cycles),
        int(scheduled_cycles),
        bool(verified),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


def _concrete(inst: Instruction | None) -> tuple | None:
    if inst is None:
        return None
    return (
        inst.mnemonic,
        None if inst.rd is None else (inst.rd.kind.value, inst.rd.index),
        None if inst.rs1 is None else (inst.rs1.kind.value, inst.rs1.index),
        None if inst.rs2 is None else (inst.rs2.kind.value, inst.rs2.index),
        inst.imm,
        inst.annul,
        inst.target,
        inst.tag,
    )


def superblock_digest(
    bodies: Sequence[Sequence[Instruction]],
    terminators: Sequence[Instruction | None],
    delays: Sequence[Instruction | None],
    *,
    extra: tuple = (),
) -> str:
    """Content address of a whole superblock region family.

    Unlike :func:`region_digest` this uses the **concrete** instruction
    operands, with no register renaming: a superblock plan's legality
    depends on register identity *across* block boundaries (terminator
    and delay-slot reads, side-exit liveness), which a per-body renaming
    does not preserve. ``extra`` folds in anything else the plan
    depended on — the profile counts of the member blocks and the
    formation config — so a different profile never replays a plan
    whose commit decision it would have changed.
    """
    payload = (
        tuple(tuple(_concrete(i) for i in body) for body in bodies),
        tuple(_concrete(t) for t in terminators),
        tuple(_concrete(d) for d in delays),
        tuple(extra),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()
