"""A content-addressed, bounded LRU cache of schedule results.

Rewriting a large executable is highly repetitive at block granularity:
the same code shapes (a counter increment, a spill/reload pair, a
compiler idiom) recur thousands of times, and the scheduler recomputes
the same dependence graph, chain lengths, and forward pass for each.
:class:`ScheduleCache` memoizes the *outcome* — the permutation and its
cycle accounting, never the concrete instructions — keyed by
:func:`~repro.parallel.fingerprint.region_digest` under a
:func:`~repro.parallel.fingerprint.context_digest` for the (machine
model, policy) pair. Serving a hit replays the permutation against the
block's actual instructions, so register-renamed twins share one entry
yet each block keeps its own operands.

Trust is explicit: each entry carries a ``verified`` bit. The plain
:class:`~repro.core.block_scheduler.BlockScheduler` inserts and serves
unverified entries (the same trust level as running the scheduler
itself), while :class:`~repro.robust.guard.GuardedBlockScheduler` only
*serves* verified entries and only *inserts* after a block's schedule
has passed :func:`~repro.core.verify.verify_schedule` — an unverified
(or poisoned) entry is treated as a miss and re-proven, and a
quarantined block is never inserted at all.

Integrity is checked, not assumed: every entry carries a checksum
(:func:`~repro.parallel.fingerprint.schedule_checksum`) bound to its
cache key and payload, recomputed at every lookup. A bit-flipped entry
(memory corruption, a future persisted-cache tier, a hostile test) is
dropped and counted under ``schedule_cache.corrupt_dropped``; the
region is simply re-scheduled — corruption costs cycles, never
correctness.

Hit/miss/insert/eviction counts flow both through the
:mod:`repro.obs` metrics registry (``schedule_cache.*``) and plain
integer attributes, so callers without a recorder can still assert on
them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Sequence

from ..core.list_scheduler import ScheduleResult
from ..isa.instruction import Instruction
from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.report import (
    CACHE_CORRUPT,
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_INSERTS,
    CACHE_MISSES,
)
from .fingerprint import (
    apply_order,
    context_digest,
    region_digest,
    schedule_checksum,
)

#: Default entry bound; at ~100 bytes an entry this is a few hundred KiB.
DEFAULT_CACHE_ENTRIES = 4096


def _entry_checksum(key: tuple[str, str], entry: "CachedSchedule") -> str:
    """The integrity checksum a healthy entry stored under ``key`` has."""
    context, digest = key
    return schedule_checksum(
        f"{context}:{digest}",
        entry.order,
        entry.original_cycles,
        entry.scheduled_cycles,
        entry.verified,
    )


@dataclass(frozen=True)
class CachedSchedule:
    """One memoized schedule: the permutation plus its accounting."""

    order: tuple[int, ...]
    original_cycles: int
    scheduled_cycles: int
    #: True only when the entry was inserted after the schedule passed
    #: post-hoc verification (the guarded path).
    verified: bool
    #: Integrity checksum over (cache key, order, cycles, verified),
    #: recomputed and checked at every :meth:`ScheduleCache.lookup`. A
    #: bit-flipped entry fails the check and is dropped as a miss — it
    #: can never replay a corrupted permutation into an edit.
    checksum: str = ""

    def replay(self, region: Sequence[Instruction]) -> ScheduleResult:
        """Reconstruct a :class:`ScheduleResult` for a concrete region."""
        if len(self.order) != len(region):
            raise ValueError(
                f"cached order has {len(self.order)} entries for a "
                f"{len(region)}-instruction region"
            )
        return ScheduleResult(
            instructions=apply_order(region, self.order),
            order=list(self.order),
            original_cycles=self.original_cycles,
            scheduled_cycles=self.scheduled_cycles,
            graph=None,
        )


@dataclass(frozen=True)
class CachedSuperblockPlan:
    """One memoized superblock plan (see ``repro.core.superblock``).

    Unlike :class:`CachedSchedule` this stores the scheduled bodies
    *concretely*: the superblock digest is computed without register
    renaming (cross-boundary legality is not renaming-invariant), so a
    hit guarantees instruction-identical member blocks and the bodies
    can be replayed verbatim. ``compensation`` pairs each taken edge
    with the copies to re-emit on it."""

    bodies: tuple[tuple[Instruction, ...], ...]
    #: (boundary index, copies): edges are re-derived from the CFG at
    #: replay time, since a content-identical superblock elsewhere in
    #: the text has different block indexes.
    compensation: tuple[tuple[int, tuple[Instruction, ...]], ...]
    moves: int
    copies: int
    local_cost: int
    superblock_cost: int
    verified: bool

    def _to_plan(self, superblock, cfg):
        from ..core.superblock import SuperblockPlan  # lazy: core is upstream

        compensation = {}
        for boundary, copies in self.compensation:
            src = cfg.blocks[superblock.blocks[boundary]]
            taken = next(e for e in src.succs if e.kind == "taken")
            compensation[taken] = list(copies)
        return SuperblockPlan(
            superblock=superblock,
            bodies=[list(body) for body in self.bodies],
            compensation=compensation,
            results=[None] * len(self.bodies),
            moves=self.moves,
            copies=self.copies,
            local_cost=self.local_cost,
            superblock_cost=self.superblock_cost,
        )


class ScheduleCache:
    """Bounded LRU map of (context, region fingerprint) → schedule.

    Superblock plans live in a second, independently bounded LRU store
    (:meth:`lookup_superblock` / :meth:`insert_superblock`) with the
    same verified-bit semantics; their traffic shares the
    ``schedule_cache.*`` counters under ``kind=superblock``."""

    def __init__(
        self,
        *,
        max_entries: int = DEFAULT_CACHE_ENTRIES,
        recorder: Recorder | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._entries: OrderedDict[tuple[str, str], CachedSchedule] = OrderedDict()
        self._superblocks: OrderedDict[tuple[str, str], CachedSuperblockPlan] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        #: Entries dropped because their integrity checksum failed.
        self.corruption_dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def context_for(self, model, policy) -> str:
        """The context digest for a (model, policy) pair. A method so
        the schedulers can stay duck-typed against the cache instead of
        importing :mod:`repro.parallel`."""
        return context_digest(model, policy)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(
        self,
        context: str,
        region: Sequence[Instruction],
        *,
        require_verified: bool = False,
        digest: str | None = None,
    ) -> CachedSchedule | None:
        """The cached schedule for ``region`` under ``context``, or None.

        ``require_verified`` makes unverified entries invisible — the
        guarded scheduler's view of the cache. An entry whose integrity
        checksum no longer matches its payload is dropped and counted
        (``schedule_cache.corrupt_dropped``), then treated as a miss —
        corruption costs a re-schedule, never correctness.

        ``digest`` lets a caller that already canonicalized ``region``
        (:func:`~repro.parallel.fingerprint.region_digest`) skip the
        recomputation — canonicalization is the expensive half of a
        cache probe, and the parallel executor touches each region
        several times per build.
        """
        key = (context, digest if digest is not None else region_digest(region))
        entry = self._entries.get(key)
        if entry is not None and entry.checksum != _entry_checksum(key, entry):
            del self._entries[key]
            self.corruption_dropped += 1
            self.recorder.count(CACHE_CORRUPT)
            entry = None
        if entry is not None and (entry.verified or not require_verified):
            self._entries.move_to_end(key)
            self.hits += 1
            self.recorder.count(CACHE_HITS)
            return entry
        self.misses += 1
        self.recorder.count(CACHE_MISSES)
        return None

    def insert(
        self,
        context: str,
        region: Sequence[Instruction],
        result: ScheduleResult,
        *,
        verified: bool = False,
        digest: str | None = None,
    ) -> CachedSchedule:
        """Memoize ``result`` for ``region``; returns the stored entry.

        A verified insert upgrades an existing unverified entry; an
        unverified insert never downgrades a verified one. ``digest``
        as in :meth:`lookup` — a precomputed region digest.
        """
        key = (context, digest if digest is not None else region_digest(region))
        existing = self._entries.get(key)
        if existing is not None and existing.verified and not verified:
            self._entries.move_to_end(key)
            return existing
        order = tuple(result.order)
        entry = CachedSchedule(
            order=order,
            original_cycles=result.original_cycles,
            scheduled_cycles=result.scheduled_cycles,
            verified=verified,
            checksum=schedule_checksum(
                f"{key[0]}:{key[1]}",
                order,
                result.original_cycles,
                result.scheduled_cycles,
                verified,
            ),
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.inserts += 1
        self.recorder.count(CACHE_INSERTS)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.recorder.count(CACHE_EVICTIONS)
        return entry

    def contains(
        self,
        context: str,
        region: Sequence[Instruction],
        *,
        require_verified: bool = False,
        digest: str | None = None,
    ) -> bool:
        """Membership check without touching LRU order or counters.

        A checksum-corrupt entry reports absent (it would be dropped at
        lookup), but is left in place — ``contains`` stays read-only.
        ``digest`` as in :meth:`lookup` — a precomputed region digest.
        """
        key = (context, digest if digest is not None else region_digest(region))
        entry = self._entries.get(key)
        if entry is None or entry.checksum != _entry_checksum(key, entry):
            return False
        return entry.verified or not require_verified

    def verified_entries(self) -> int:
        return sum(1 for entry in self._entries.values() if entry.verified)

    def clear(self) -> None:
        self._entries.clear()
        self._superblocks.clear()

    # -- superblock plans --------------------------------------------------------

    def superblock_entries(self) -> int:
        return len(self._superblocks)

    def lookup_superblock(
        self,
        context: str,
        digest: str,
        *,
        require_verified: bool = False,
    ) -> CachedSuperblockPlan | None:
        """The cached plan for a superblock digest under ``context``.

        Same trust contract as :meth:`lookup`: ``require_verified``
        hides unverified entries from the guarded path."""
        key = (context, digest)
        entry = self._superblocks.get(key)
        if entry is not None and (entry.verified or not require_verified):
            self._superblocks.move_to_end(key)
            self.hits += 1
            self.recorder.count(CACHE_HITS, kind="superblock")
            return entry
        self.misses += 1
        self.recorder.count(CACHE_MISSES, kind="superblock")
        return None

    def insert_superblock(
        self,
        context: str,
        digest: str,
        plan,
        *,
        verified: bool = False,
    ) -> CachedSuperblockPlan:
        """Memoize a committed :class:`~repro.core.superblock.SuperblockPlan`.

        Verified inserts upgrade, unverified ones never downgrade —
        mirroring :meth:`insert`."""
        key = (context, digest)
        existing = self._superblocks.get(key)
        if existing is not None and existing.verified and not verified:
            self._superblocks.move_to_end(key)
            return existing
        chain = list(plan.superblock.blocks)
        entry = CachedSuperblockPlan(
            bodies=tuple(tuple(body) for body in plan.bodies),
            compensation=tuple(
                (chain.index(edge.src), tuple(copies))
                for edge, copies in plan.compensation.items()
            ),
            moves=plan.moves,
            copies=plan.copies,
            local_cost=plan.local_cost,
            superblock_cost=plan.superblock_cost,
            verified=verified,
        )
        self._superblocks[key] = entry
        self._superblocks.move_to_end(key)
        self.inserts += 1
        self.recorder.count(CACHE_INSERTS, kind="superblock")
        while len(self._superblocks) > self.max_entries:
            self._superblocks.popitem(last=False)
            self.evictions += 1
            self.recorder.count(CACHE_EVICTIONS, kind="superblock")
        return entry
