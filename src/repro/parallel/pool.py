"""Persistent worker pools: spawn once, stay warm, amortize everything.

PR 3's executor built a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
per edit, so every build paid the full fixed cost of parallelism again:
fork the workers, rebuild the machine model from SADL source in each
one, attach compiled pipeline tables, then throw it all away. On the
bench matrix that overhead exceeded the scheduling work itself —
parallel-cold ran at 0.58× serial.

This module makes the fixed costs *once-per-process-lifetime* instead
of once-per-build:

- **Spawn once.** A module-level :class:`PoolManager` keeps one live
  executor per ``(start method, worker count)``. Builds *lease* it; a
  healthy lease release leaves the workers running for the next build.
- **Hot models.** :func:`worker_model` is an ``lru_cache`` *in the
  worker process*; with a persistent worker, the SADL rebuild happens
  once per digest and every later shard reuses the compiled model.
- **Tables at startup.** Workers attach compiled
  :class:`~repro.pipeline.tables.PipelineTables` when they first see a
  model — loaded from the shared disk cache keyed by the model's
  content digest — and keep them attached for the lease's lifetime and
  every lease after it. Tables change scheduling *cost*, never
  scheduling *results* (the PR 8 differential battery), so pooled
  schedules stay byte-identical to serial ones.
- **Fork inheritance.** :func:`prewarm_parent` builds the worker-side
  model and attaches its tables in the *parent* before the pool
  spawns; under the ``fork`` start method every worker inherits the hot
  model for free and the per-worker rebuild disappears entirely.

Supervision is unchanged. A lease satisfies the
:class:`~repro.robust.supervise.ShardSupervisor` pool protocol
(``submit`` / ``shutdown`` / a ``_processes`` table for
``_kill_pool``): a healthy ``shutdown(wait=True)`` is a no-op that
keeps the pool warm, while the ``cancel_futures`` teardown the
supervisor issues for a hung or crashed pool *retires* the shared
executor — the registry entry is invalidated before the workers are
terminated, so the next lease respawns a clean pool and a poisoned
worker can never serve a later build.

Finally, the pool is **adaptive to the host**: when the OS offers a
single CPU (``os.cpu_count() == 1``), process fan-out cannot pay — the
workers time-slice one core and every IPC hop adds scheduler latency —
so :meth:`PoolManager.acquire` hands out an :class:`InlineLease`
instead: shards run through the *same* worker entry point on the same
warm, table-attached model, in the parent process, with zero IPC. The
trade is explicit: an inline shard that hangs cannot be killed by the
supervisor's deadline (exceptions still route through the ordinary
retry machinery), which is why inline service is only offered when the
caller passes ``allow_inline=True`` — the executor does so only for
the stock scheduling entry point, never for injected worker functions
(the chaos harness always gets real processes to crash). Set
``REPRO_POOL_INLINE=0``/``1`` to force the decision either way.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache

from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.report import POOL_RETIRES, POOL_REUSES, POOL_SPAWNS
from ..spawn.library import load_machine_from_source
from ..spawn.model import MachineModel


# -- worker-side warm state ------------------------------------------------------


@lru_cache(maxsize=8)
def worker_model(name: str, source: str) -> MachineModel:
    """Rebuild (once per process, per digest) a model from SADL source.

    Lives here, not in the executor, so both the parent (for fork
    prewarming) and the workers populate the *same* cache: under
    ``fork`` a child inherits every entry the parent built.
    """
    return load_machine_from_source(source, name)


def warm_worker_model(name: str, source: str, tables: bool = True) -> MachineModel:
    """Build ``worker_model(name, source)`` and attach its compiled
    tables (from the shared disk cache). Idempotent; the entry point a
    pool initializer runs in each worker at spawn, and
    :func:`prewarm_parent` runs in the parent before a fork spawn."""
    model = worker_model(name, source)
    if tables and model.tables is None:
        from ..pipeline.tables import attach_tables

        attach_tables(model)
    return model


def prewarm_parent(name: str, source: str, *, tables: bool = True) -> None:
    """Populate the parent-side :func:`worker_model` cache so ``fork``
    children inherit a hot model and attached tables at spawn."""
    warm_worker_model(name, source, tables)


#: Environment override for the inline fast path: "1" forces it on
#: (wherever the caller allows it), "0" forces real process pools.
INLINE_ENV = "REPRO_POOL_INLINE"


def effective_workers(jobs: int) -> int:
    """How many workers can actually run concurrently: ``jobs`` capped
    by the host's CPU count. The executor does not silently clamp pool
    sizes to this (the CLI warns instead) — it only consults it for the
    one degenerate case where fan-out is pure overhead."""
    return max(1, min(int(jobs), os.cpu_count() or int(jobs)))


def _inline_eligible(jobs: int) -> bool:
    override = os.environ.get(INLINE_ENV)
    if override == "0":
        return False
    if override == "1":
        return True
    return effective_workers(jobs) == 1


class InlineLease:
    """The pool's degenerate form for hosts with one usable CPU.

    Satisfies the same supervisor pool protocol as :class:`PoolLease`,
    but ``submit`` runs the task *in the parent process, synchronously*,
    on the same warm model state real workers would hold (the
    process-wide :func:`worker_model` cache plus attached tables — that
    cache IS this pool's persistent warm state). Exceptions are
    captured into the returned future, so the supervisor's penalize/
    bisect/retry machinery behaves exactly as with a worker that raised;
    only crash-kill and deadline interruption are lost, which is the
    documented trade for not paying IPC that cannot be overlapped with
    anything.
    """

    #: no worker processes for ``_kill_pool`` to terminate.
    _processes: dict = {}
    generation = 0

    def __init__(self, recorder: Recorder | None = None) -> None:
        self._recorder = recorder if recorder is not None else NULL_RECORDER

    def submit(self, fn, /, *args, **kwargs):
        future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # captured, not raised: the
            future.set_exception(exc)  # supervisor owns error handling
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        return None


# -- the shared registry ---------------------------------------------------------


@dataclass
class _PoolEntry:
    """One live executor in the registry."""

    key: tuple
    executor: ProcessPoolExecutor
    #: monotonically increasing per key; a retired pool's replacement
    #: gets the next generation, making respawns visible in stats.
    generation: int
    leases: int = 0
    retired: bool = False

    def healthy(self) -> bool:
        if self.retired:
            return False
        executor = self.executor
        if getattr(executor, "_broken", False):
            return False
        if getattr(executor, "_shutdown_thread", False):
            return False
        return True


class PoolLease:
    """One build's handle on a shared executor.

    Implements exactly the protocol :class:`ShardSupervisor` expects of
    the object its ``pool_factory`` returns — and nothing else, so the
    supervisor's crash/hang/teardown machinery carries over unchanged.
    """

    def __init__(
        self,
        manager: "PoolManager",
        entry: _PoolEntry,
        recorder: Recorder | None = None,
    ) -> None:
        self._manager = manager
        self._entry = entry
        self._recorder = recorder if recorder is not None else NULL_RECORDER

    @property
    def generation(self) -> int:
        return self._entry.generation

    @property
    def _processes(self):
        # ``supervise._kill_pool`` snapshots this table before calling
        # ``shutdown``; expose the real worker processes so a kill
        # terminates them, not a proxy.
        return getattr(self._entry.executor, "_processes", None)

    def submit(self, fn, /, *args, **kwargs):
        return self._entry.executor.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Healthy release keeps the pool warm; a teardown retires it.

        ``cancel_futures=True`` is only ever issued by ``_kill_pool``
        (hang/crash) — the shared executor must not survive it. A
        plain ``shutdown(wait=True)`` arrives after the supervisor has
        drained every future, so there is nothing to wait on and the
        workers stay up for the next lease.
        """
        entry = self._entry
        if cancel_futures or not entry.healthy():
            self._recorder.count(POOL_RETIRES)
            self._manager._retire(entry, shutdown_wait=wait and not cancel_futures)
        entry.leases = max(0, entry.leases - 1)


class PoolManager:
    """Spawn-once registry of persistent worker pools.

    Keyed by ``(start method, worker count)``: one warm pool serves
    every model — workers cache models per digest, so a pool that has
    scheduled for ``ultrasparc`` schedules for ``supersparc`` without a
    respawn, at the cost of one lazy rebuild per worker per new digest.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools: dict[tuple, _PoolEntry] = {}
        self._generations: dict[tuple, int] = {}
        #: warm specs already served inline (their models are hot in
        #: the parent's :func:`worker_model` cache).
        self._inline_warm: set = set()
        self.spawns = 0
        self.reuses = 0
        self.retires = 0

    def acquire(
        self,
        *,
        jobs: int,
        context,
        warm: tuple[str, str] | None = None,
        recorder: Recorder | None = None,
        allow_inline: bool = False,
    ) -> "PoolLease | InlineLease":
        """Lease the pool for ``(context, jobs)``, spawning or
        respawning it if absent or unhealthy.

        ``warm`` is an optional ``(model name, SADL source)`` spec: a
        *newly spawned* pool runs :func:`warm_worker_model` in every
        worker at startup (and, under ``fork``, in the parent first so
        children inherit the built model); an already-warm pool ignores
        it — its workers warm lazily on first contact with a new model
        and stay hot from then on.

        ``allow_inline=True`` permits the degenerate single-CPU fast
        path (:class:`InlineLease`); callers that need real processes —
        fault injection, IPC tests — leave it off.
        """
        recorder = recorder if recorder is not None else NULL_RECORDER
        if allow_inline and _inline_eligible(jobs):
            if warm is not None:
                prewarm_parent(*warm)
            with self._lock:
                if warm in self._inline_warm:
                    self.reuses += 1
                    recorder.count(POOL_REUSES)
                else:
                    self._inline_warm.add(warm)
                    self.spawns += 1
                    recorder.count(POOL_SPAWNS)
            return InlineLease(recorder)
        if context is None:
            context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        method = context.get_start_method()
        key = (method, int(jobs))
        with self._lock:
            entry = self._pools.get(key)
            if entry is not None and entry.healthy():
                entry.leases += 1
                self.reuses += 1
                recorder.count(POOL_REUSES)
                return PoolLease(self, entry, recorder)
            if entry is not None:
                self._retire_locked(entry, shutdown_wait=False)
            initargs = ()
            initializer = None
            if warm is not None:
                name, source = warm
                if method == "fork":
                    # Build in the parent; children inherit at fork.
                    prewarm_parent(name, source)
                initializer = warm_worker_model
                initargs = (name, source)
            generation = self._generations.get(key, 0) + 1
            self._generations[key] = generation
            executor = ProcessPoolExecutor(
                max_workers=max(1, int(jobs)),
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            )
            entry = _PoolEntry(key=key, executor=executor, generation=generation)
            entry.leases = 1
            self._pools[key] = entry
            self.spawns += 1
            recorder.count(POOL_SPAWNS)
            return PoolLease(self, entry, recorder)

    def _retire(self, entry: _PoolEntry, *, shutdown_wait: bool = False) -> None:
        with self._lock:
            self._retire_locked(entry, shutdown_wait=shutdown_wait)

    def _retire_locked(self, entry: _PoolEntry, *, shutdown_wait: bool) -> None:
        if entry.retired:
            return
        entry.retired = True
        if self._pools.get(entry.key) is entry:
            del self._pools[entry.key]
        self.retires += 1
        try:
            entry.executor.shutdown(wait=shutdown_wait, cancel_futures=True)
        except Exception:
            # A broken executor may refuse teardown; _kill_pool (or the
            # interpreter's atexit join) finishes the job.
            pass

    def shutdown(self, wait: bool = True) -> None:
        """Retire every pool (test teardown / interpreter exit)."""
        with self._lock:
            entries = list(self._pools.values())
        for entry in entries:
            entry.retired = True
            try:
                entry.executor.shutdown(wait=wait, cancel_futures=True)
            except Exception:
                pass
        with self._lock:
            for entry in entries:
                if self._pools.get(entry.key) is entry:
                    del self._pools[entry.key]
            self.retires += len(entries)
            self._inline_warm.clear()

    def stats(self) -> dict:
        """Registry counters plus the live pools' shapes."""
        with self._lock:
            pools = [
                {
                    "start_method": entry.key[0],
                    "workers": entry.key[1],
                    "generation": entry.generation,
                    "leases": entry.leases,
                }
                for entry in self._pools.values()
            ]
        return {
            "spawns": self.spawns,
            "reuses": self.reuses,
            "retires": self.retires,
            "inline_models": len(self._inline_warm),
            "pools": pools,
        }


#: The process-wide registry every build leases from.
MANAGER = PoolManager()
atexit.register(MANAGER.shutdown, False)


def acquire_pool(
    *,
    jobs: int,
    context,
    warm: tuple[str, str] | None = None,
    recorder: Recorder | None = None,
    allow_inline: bool = False,
) -> "PoolLease | InlineLease":
    """Lease the shared persistent pool (see :meth:`PoolManager.acquire`)."""
    return MANAGER.acquire(
        jobs=jobs,
        context=context,
        warm=warm,
        recorder=recorder,
        allow_inline=allow_inline,
    )


def pool_stats() -> dict:
    return MANAGER.stats()


def shutdown_pools(wait: bool = True) -> None:
    MANAGER.shutdown(wait)


def warm_pool(
    model: MachineModel,
    *,
    jobs: int,
    start_method: str | None = None,
    recorder: Recorder | None = None,
) -> bool:
    """Spawn (or touch) the persistent pool for ``model`` ahead of need.

    Daemon startup and benchmarks call this so the spawn + model-build
    cost lands at service start, not inside the first request or the
    timed region. Returns False when the model carries no SADL source
    (such models cannot run in workers at all — the executor's serial
    fallback owns them).
    """
    from .executor import _model_spec, _mp_context

    spec = _model_spec(model)
    if spec is None:
        return False
    context = _mp_context(start_method)
    lease = acquire_pool(
        jobs=jobs,
        context=context,
        warm=spec,
        recorder=recorder,
        allow_inline=True,
    )
    # Round-trip one no-op per worker so spawn completes before return.
    futures = [lease.submit(_noop) for _ in range(max(1, int(jobs)))]
    for future in futures:
        future.result(timeout=60)
    lease.shutdown(wait=True)
    return True


def _noop() -> None:
    return None
