"""Parallel routine scheduling with a content-addressed schedule cache.

Two cooperating pieces (see ``docs/performance.md``):

* :class:`ScheduleCache` — a bounded LRU memo of schedule *outcomes*
  (permutation + cycle accounting) keyed by a canonical fingerprint of
  the region (:mod:`repro.parallel.fingerprint`: register-renamed
  instruction words) under a (machine model, policy) context digest.
* :class:`ParallelScheduler` — pre-schedules every region an editor
  pass will touch across worker processes, warming the cache so the
  inherently serial layout pass runs entirely on hits. Serial,
  parallel, and warm-cache runs emit byte-identical executables; the
  differential suite in ``tests/parallel/`` holds that equivalence.

Worker processes come from the persistent spawn-once pool in
:mod:`repro.parallel.pool` — models stay hot and compiled pipeline
tables stay attached across builds, which is what makes parallel-cold
faster than serial instead of slower (see ``docs/performance.md``).

Both compose with guarded scheduling: the guard serves only *verified*
entries and inserts only after a block's proof passes, so memoization
never weakens the safety contract.
"""

from .benchmark import ModeTiming, ScalingReport, measure_modes, render_report
from .cache import (
    DEFAULT_CACHE_ENTRIES,
    CachedSchedule,
    CachedSuperblockPlan,
    ScheduleCache,
)
from .executor import (
    ParallelOptions,
    ParallelScheduler,
    make_transform,
)
from .fingerprint import (
    canonical_region,
    context_digest,
    model_digest,
    model_identity,
    policy_digest,
    policy_identity,
    region_digest,
    superblock_digest,
)
from .pool import (
    InlineLease,
    PoolLease,
    PoolManager,
    acquire_pool,
    effective_workers,
    pool_stats,
    shutdown_pools,
    warm_pool,
)

__all__ = [
    "CachedSchedule",
    "CachedSuperblockPlan",
    "DEFAULT_CACHE_ENTRIES",
    "InlineLease",
    "ModeTiming",
    "ParallelOptions",
    "ParallelScheduler",
    "PoolLease",
    "PoolManager",
    "ScalingReport",
    "ScheduleCache",
    "acquire_pool",
    "canonical_region",
    "context_digest",
    "effective_workers",
    "make_transform",
    "measure_modes",
    "model_digest",
    "model_identity",
    "policy_digest",
    "policy_identity",
    "pool_stats",
    "region_digest",
    "render_report",
    "shutdown_pools",
    "superblock_digest",
    "warm_pool",
]
