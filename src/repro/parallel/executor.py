"""Parallel routine scheduling by cache warming.

Scheduling dominates an edit's cost, and it is embarrassingly parallel:
each straight-line region schedules independently of every other. But
the *editor* pass is inherently serial — layout assigns addresses block
by block, and branch retargeting depends on every address before it.

The resolution is to split the work, not the pass.
:class:`ParallelScheduler` hooks the editor's ``prepare`` step: before
layout begins it walks every routine (:func:`~repro.eel.routine.split_routines`),
collects each block's would-be body (instrumentation already merged, via
:meth:`~repro.eel.editor.Editor.block_body`), dedupes regions by
fingerprint, and ships the misses to worker processes in routine-order
shards. Workers schedule (and, in guarded mode, *verify*) each region;
the parent drains shard results **in submission order** and inserts them
into the shared :class:`~repro.parallel.cache.ScheduleCache`. The
ordinary serial layout pass then runs unchanged — every region is a
cache hit replaying the same permutation a serial run would compute.

Determinism is therefore structural, not coincidental: parallel and
serial runs execute the *same* final code path over the same cache
state, and the scheduler itself is a pure function of (region, model,
policy), so worker count and completion order cannot leak into the
output bytes or the schedule statistics.

Workers cannot receive a :class:`~repro.spawn.model.MachineModel`
directly (its compiled evaluators do not pickle); they rebuild it from
the SADL source the model carries. Models without source (synthetic or
fault-injected ones) degrade to the serial path, counted under
``parallel.serial_fallbacks``.

Worker processes are *persistent* (:mod:`repro.parallel.pool`): the
optimistic round leases a shared spawn-once pool whose workers hold
hot models with compiled pipeline tables attached at startup, so
repeated builds pay IPC and scheduling — not fork, model rebuild, and
table attach — and shards are sized adaptively to amortize that IPC
over larger region batches. On a host whose OS offers only one CPU the
pool degrades further, to an in-process fast path
(:class:`~repro.parallel.pool.InlineLease`): the same worker entry
point runs on the same warm table-attached model with zero IPC,
because fan-out that time-slices a single core is pure overhead.
Cautious retry rounds still run in fresh single-worker pools for exact
crash attribution, and a pool the supervisor kills is retired so the
next build respawns clean workers
(``ParallelOptions(persistent_pool=False)`` restores the historical
pool-per-build behavior).

Workers are supervised (:mod:`repro.robust.supervise`): each shard gets
a wall-clock deadline, a dead or hung worker costs a bounded, bisecting
retry rather than the build, and whatever the supervisor quarantines is
simply left for the serial pass to schedule — output bytes are
unchanged by any worker failure, and the damage is visible under the
``parallel.worker_crashes`` / ``parallel.worker_hangs`` /
``parallel.shard_retries`` / ``parallel.degraded_serial`` counters.
Worker results are untrusted IPC: each carries the region digest it was
computed for and an integrity checksum
(:func:`~repro.parallel.fingerprint.schedule_checksum`); the parent
revalidates digest, permutation, and checksum before inserting, and a
corrupt result is dropped (``parallel.ipc_rejected``) so the serial
pass re-schedules that region from scratch.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.block_scheduler import BlockScheduler, SchedulerStats
from ..core.dependence import SchedulingPolicy
from ..core.list_scheduler import ListScheduler, ScheduleResult
from ..core.regions import split_regions
from ..core.superblock import SuperblockConfig, SuperblockScheduler
from ..core.verify import DEFAULT_SEED, verify_schedule
from ..eel.routine import split_routines
from ..isa.instruction import Instruction
from ..obs.recorder import NULL_RECORDER, MetricsRecorder, Recorder
from ..obs.report import (
    PARALLEL_DEGRADED,
    PARALLEL_FALLBACKS,
    PARALLEL_IPC_REJECTED,
    PARALLEL_REGIONS,
    PARALLEL_SHARDS,
)
from ..robust.guard import GuardBudget, GuardedBlockScheduler
from ..robust.supervise import (
    DEFAULT_MAX_SHARD_RETRIES,
    DEFAULT_SHARD_DEADLINE_S,
    ShardSupervisor,
    SupervisionOutcome,
    SupervisionPolicy,
)
from ..spawn.model import MachineModel
from .cache import DEFAULT_CACHE_ENTRIES, ScheduleCache
from .fingerprint import region_digest, schedule_checksum
from .pool import acquire_pool, warm_worker_model, worker_model


#: Smallest shard the adaptive chunker will cut: below this, the pickle
#: round-trip costs more than the regions' scheduling is worth.
MIN_SHARD_REGIONS = 16


@dataclass(frozen=True)
class ParallelOptions:
    """How an edit's scheduling work is executed.

    ``jobs=1`` is the ordinary serial path. ``use_cache=False`` disables
    cross-build memoization; with ``jobs > 1`` a private transport cache
    still carries worker results into the layout pass, then is dropped.

    ``start_method`` picks the multiprocessing start method explicitly
    (``fork``/``spawn``/``forkserver``); None keeps the historical
    preference for ``fork`` where the platform offers it, falling back
    to the platform default elsewhere. ``shard_deadline_s`` and
    ``max_shard_retries`` parameterize worker supervision
    (:class:`~repro.robust.supervise.SupervisionPolicy`).
    ``persistent_pool=False`` opts out of the shared spawn-once worker
    pool and builds an ephemeral pool per edit (the pre-pool behavior).
    """

    jobs: int = 1
    use_cache: bool = True
    cache_entries: int = DEFAULT_CACHE_ENTRIES
    start_method: str | None = None
    shard_deadline_s: float = DEFAULT_SHARD_DEADLINE_S
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES
    persistent_pool: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.cache_entries < 1:
            raise ValueError("cache_entries must be at least 1")
        if self.start_method is not None:
            methods = multiprocessing.get_all_start_methods()
            if self.start_method not in methods:
                raise ValueError(
                    f"start_method {self.start_method!r} not available here "
                    f"(choose from {', '.join(methods)})"
                )
        if self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive")
        if self.max_shard_retries < 0:
            raise ValueError("max_shard_retries cannot be negative")


# -- worker side -----------------------------------------------------------------


#: Parent-side region digests for the *current* build, keyed by
#: ``id(region)``. Only the inline fast path reads it: when
#: ``_schedule_shard`` runs in the parent process, the region object
#: it received IS the object ``_collect_shards`` digested — no IPC
#: happened, so recomputing the self-authenticating digest would prove
#: nothing. A real worker process must never consult it (its regions
#: are fresh unpickles whose ids can collide with a stale fork-time
#: snapshot), hence the ``parent_process()`` guard at the use site.
_PARENT_DIGESTS: dict[int, str] = {}


def _worker_model(name: str, source: str) -> MachineModel:
    """Rebuild (once per worker process) the model from its SADL source.

    Delegates to the pool module's process-wide cache so persistent
    workers keep models hot across builds — and, under ``fork``,
    inherit entries the parent prewarmed before the pool spawned.
    """
    return worker_model(name, source)


def _schedule_shard(payload):
    """Schedule one shard's regions; runs in a worker process.

    ``payload`` is (model name, SADL source, policy, regions, verify?,
    trials, seed, telemetry?, tables?). Returns ``(results, snapshot)``: one
    ``(digest, order, original_cycles, scheduled_cycles, verified,
    checksum)`` tuple per region in input order, plus — when
    ``telemetry`` is set — a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of the private
    registry the shard's scheduler recorded into (None otherwise). The
    parent merges the snapshot, so forward-pass decision telemetry is
    not silently dropped on the floor of the worker process.

    ``digest`` and ``checksum`` make the result self-authenticating:
    the parent recomputes both from the region it shipped and rejects
    the result (``parallel.ipc_rejected``) on any mismatch, so a
    corrupted IPC message can cost a re-schedule but never an edit.
    """
    name, source, policy, regions, verify, trials, seed, telemetry, tables = payload
    # Tables attach on a worker's *first* contact with a model and stay
    # attached for the process lifetime — in a persistent pool that is
    # effectively "at startup". The eager prefix is loaded from the
    # disk cache keyed by the model's content digest — compiled once
    # (usually by the parent), read by every worker — and tables cannot
    # change schedules, only their cost, so a worker that misses the
    # cache and recompiles still returns identical results.
    model = warm_worker_model(name, source, tables)
    recorder = MetricsRecorder() if telemetry else None
    scheduler = ListScheduler(model, policy, recorder)
    # In-parent (inline pool) execution may reuse collect-time digests;
    # see _PARENT_DIGESTS for why child processes must not.
    known_digests = (
        _PARENT_DIGESTS if multiprocessing.parent_process() is None else {}
    )
    out = []
    for region in regions:
        known = known_digests.get(id(region))
        region = list(region)
        result = scheduler.schedule_region(region)
        verified = False
        if verify:
            verified = bool(
                verify_schedule(
                    region,
                    result.instructions,
                    policy=policy,
                    trials=trials,
                    seed=seed,
                )
            )
        digest = known if known is not None else region_digest(region)
        out.append(
            (
                digest,
                tuple(result.order),
                result.original_cycles,
                result.scheduled_cycles,
                verified,
                schedule_checksum(
                    digest,
                    result.order,
                    result.original_cycles,
                    result.scheduled_cycles,
                    verified,
                ),
            )
        )
    if tables:
        # Give back what this shard learned: states interned beyond the
        # eager prefix go to the disk cache (size-guarded, so steady
        # state writes nothing) and the next fresh process skips the
        # first-pass learning cost entirely.
        from ..pipeline.tables import persist_learned

        persist_learned(model)
    snapshot = recorder.metrics.snapshot() if recorder is not None else None
    return out, snapshot


def _model_spec(model) -> tuple[str, str] | None:
    """(name, SADL source) when the model can be rebuilt in a worker.

    Only an exact :class:`MachineModel` is trusted: a wrapper (e.g. a
    fault-injection ``CorruptedModel``) delegating attribute access
    would hand over its *healthy* base's source and silently launder the
    corruption away in the workers.
    """
    if type(model) is MachineModel and model.source is not None:
        return model.name, model.source
    return None


def _mp_context(start_method: str | None = None):
    """The multiprocessing context for worker pools.

    An explicit ``start_method`` wins; otherwise prefer ``fork`` where
    the platform offers it (cheapest, and the historical behavior) and
    fall back to the platform default — ``spawn`` on macOS/Windows.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# -- the transform wrapper -------------------------------------------------------


class ParallelScheduler:
    """A :data:`~repro.eel.editor.BlockTransform` that pre-schedules
    across worker processes, then delegates the serial pass to ``inner``
    (a :class:`BlockScheduler` or :class:`GuardedBlockScheduler` wired
    to the same cache)."""

    def __init__(
        self,
        inner,
        cache: ScheduleCache,
        *,
        jobs: int,
        recorder: Recorder | None = None,
        verify_in_workers: bool | None = None,
        verify_trials: int = 4,
        verify_seed: int = DEFAULT_SEED,
        start_method: str | None = None,
        shard_deadline_s: float = DEFAULT_SHARD_DEADLINE_S,
        max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
        persistent_pool: bool = True,
        worker_fn=None,
    ) -> None:
        if getattr(inner, "cache", None) is not cache:
            raise ValueError(
                "the inner transform must be wired to the same cache the "
                "parallel scheduler warms"
            )
        self.inner = inner
        self.cache = cache
        self.jobs = jobs
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.model = inner.model
        self.policy = inner.policy
        if verify_in_workers is None:
            verify_in_workers = isinstance(inner, GuardedBlockScheduler)
        self.verify_in_workers = verify_in_workers
        self.verify_trials = getattr(inner, "verify_trials", verify_trials)
        self.verify_seed = getattr(inner, "verify_seed", verify_seed)
        self.start_method = start_method
        self.persistent_pool = persistent_pool
        self.supervision_policy = SupervisionPolicy(
            shard_deadline_s=shard_deadline_s, max_retries=max_shard_retries
        )
        #: The worker entry point; injectable so the chaos harness can
        #: wrap :func:`_schedule_shard` with fault injectors.
        self.worker_fn = worker_fn if worker_fn is not None else _schedule_shard
        self._context = cache.context_for(self.model, self.policy)
        #: regions scheduled in workers during the last ``prepare``.
        self.warmed_regions = 0
        #: the last ``prepare``'s :class:`SupervisionOutcome` (None
        #: before the first parallel warm).
        self.supervision: SupervisionOutcome | None = None
        #: worker results rejected by parent-side integrity validation
        #: during the last ``prepare``.
        self.ipc_rejected = 0
        #: id(region) -> region digest, computed once in
        #: ``_collect_shards`` and reused by merge/validate/insert —
        #: canonicalization is the expensive half of a cache probe, and
        #: without this each region paid it up to four times per build.
        self._digests: dict[int, str] = {}
        #: block index -> digest of each non-empty region in split
        #: order, for *every* block walked at collect time (hits and
        #: duplicates included). Handed to a plain inner
        #: :class:`BlockScheduler` as ``digest_hints`` so the layout
        #: pass skips re-canonicalizing regions collect just digested.
        self._block_digests: dict[int, list[str]] = {}

    # Delegated observers, so callers see one transform interface.

    @property
    def stats(self) -> SchedulerStats:
        return self.inner.stats

    @property
    def quarantine(self):
        return getattr(self.inner, "quarantine", ())

    @property
    def fallbacks(self) -> int:
        return getattr(self.inner, "fallbacks", 0)

    def __call__(self, block, body):
        return self.inner(block, body)

    # -- the editor prepare hook --------------------------------------------------

    def prepare(self, editor, *, skip_blocks: frozenset[int] = frozenset()) -> None:
        """Warm the cache for every region ``editor`` will lay out.

        ``skip_blocks`` excludes blocks another transform already owns —
        the superblock pass passes its planned blocks here, since their
        bodies are served from the plan, never from per-region entries.
        """
        if self.jobs <= 1:
            return
        spec = _model_spec(self.model)
        if spec is None:
            self.recorder.count(PARALLEL_FALLBACKS)
            return
        shards = self._collect_shards(editor, skip_blocks)
        # Hand the layout pass the digests collect just computed. Only a
        # plain BlockScheduler takes hints: the guarded scheduler's
        # verify-and-memoize flow keys its own digests, and a hint that
        # went stale would merely cost a cache miss there anyway — but
        # there is no need to reason about it, so it gets none.
        if type(self.inner) is BlockScheduler:
            self.inner.digest_hints = self._block_digests
        if not shards:
            return
        name, source = spec
        with self.recorder.span("parallel.warm", shards=len(shards)):
            self._run_shards(name, source, shards)

    def _collect_shards(
        self, editor, skip_blocks: frozenset[int] = frozenset()
    ) -> list[list[list[Instruction]]]:
        """Unique unscheduled regions (deduped under this context's
        fingerprint), walked in routine order and chunked into several
        shards per worker so a program with few routines still spreads
        across the pool. Chunking cannot affect the result: each region
        schedules independently and the parent inserts shard results in
        submission order.

        Shards are sized adaptively: at most two shards per worker
        (enough slack for stragglers without drowning the build in
        round-trips) and never smaller than
        :data:`MIN_SHARD_REGIONS` regions, so each IPC round-trip
        carries enough scheduling work to amortize its pickling cost —
        a persistent pool makes dispatch cheap, not free."""
        seen: set[str] = set()
        work: list[list[Instruction]] = []
        self._digests = {}
        self._block_digests = {}
        for routine in split_routines(editor.executable, editor.cfg):
            for block in routine.blocks:
                if block.index in skip_blocks:
                    continue
                body = editor.block_body(block)
                block_digests = self._block_digests.setdefault(block.index, [])
                for region in split_regions(body):
                    instructions = list(region.instructions)
                    if not instructions:
                        continue
                    digest = region_digest(instructions)
                    block_digests.append(digest)
                    if digest in seen:
                        continue
                    seen.add(digest)
                    if self.cache.contains(
                        self._context,
                        instructions,
                        require_verified=self.verify_in_workers,
                        digest=digest,
                    ):
                        continue
                    work.append(instructions)
                    self._digests[id(instructions)] = digest
        if not work:
            return []
        shards = max(1, min(self.jobs * 2, -(-len(work) // MIN_SHARD_REGIONS)))
        chunk = -(-len(work) // shards)
        return [work[i : i + chunk] for i in range(0, len(work), chunk)]

    def _run_shards(
        self, name: str, source: str, shards: list[list[list[Instruction]]]
    ) -> None:
        def make_payload(regions):
            return (
                name,
                source,
                self.policy,
                regions,
                self.verify_in_workers,
                self.verify_trials,
                self.verify_seed,
                self.recorder.enabled,
                # Workers always schedule through compiled tables (they
                # attach once per process, from the shared disk cache)
                # even when the parent runs interpreted: tables are
                # schedule-invariant, so this is free speed, not drift.
                True,
            )

        context = _mp_context(self.start_method)
        leased = False

        def pool_factory(queued: int):
            # The supervisor's first call is the optimistic round over
            # the shared warm pool; every later call is a cautious
            # single-unit retry, which gets a fresh ephemeral pool so
            # crash attribution stays exact and killing it cannot cost
            # the warm workers. Only the stock entry point may lease
            # the shared pool at all: an injected worker function
            # (chaos fault injectors) depends on ambient process state
            # — environment variables set *after* a shared pool forked
            # are invisible to its workers — and must get fresh
            # processes it can kill.
            nonlocal leased
            if (
                self.persistent_pool
                and not leased
                and self.worker_fn is _schedule_shard
            ):
                leased = True
                return acquire_pool(
                    jobs=self.jobs,
                    context=context,
                    warm=(name, source),
                    recorder=self.recorder,
                    allow_inline=True,
                )
            return ProcessPoolExecutor(
                max_workers=max(1, min(self.jobs, queued)), mp_context=context
            )

        supervisor = ShardSupervisor(
            self.worker_fn,
            make_payload,
            pool_factory,
            policy=self.supervision_policy,
            recorder=self.recorder,
        )
        # Publish collect-time digests for the inline fast path (ids
        # are unique among live objects, and the regions stay alive in
        # ``shards`` until the pops below, so entries cannot alias
        # across concurrent builds in other threads).
        _PARENT_DIGESTS.update(self._digests)
        try:
            outcome = supervisor.run(shards)
        finally:
            for region_id in self._digests:
                _PARENT_DIGESTS.pop(region_id, None)
        self.supervision = outcome
        # Merge in hierarchical key order: cache state after warming is
        # independent of worker completion and retry interleaving.
        for _key, shard, (results, snapshot) in outcome.completed_in_order():
            self.recorder.count(PARALLEL_SHARDS)
            self._merge_shard(shard, results)
            self._merge_telemetry(snapshot)
        if outcome.degraded:
            # Whatever was quarantined is scheduled by the serial layout
            # pass — output bytes are unchanged, only wall clock paid.
            self.recorder.count(PARALLEL_DEGRADED)
        if outcome.quarantined and not outcome.completed:
            # Nothing parallel survived at all: the historical
            # whole-build fallback signal.
            self.recorder.count(PARALLEL_FALLBACKS)

    def _merge_shard(self, shard, results) -> None:
        if not isinstance(results, (list, tuple)) or len(results) != len(shard):
            # A worker that lost or invented regions is not trusted for
            # any of them.
            self.ipc_rejected += 1
            self.recorder.count(PARALLEL_IPC_REJECTED)
            return
        for region, result in zip(shard, results):
            digest = self._digests.get(id(region))
            unpacked = self._validate_result(region, result, digest)
            if unpacked is None:
                self.ipc_rejected += 1
                self.recorder.count(PARALLEL_IPC_REJECTED)
                continue
            order, original_cycles, scheduled_cycles, verified = unpacked
            if self.verify_in_workers and not verified:
                # The guard will re-prove this region serially; a failed
                # worker proof must not leave any entry behind.
                continue
            scheduled = [region[i] for i in order]
            self.cache.insert(
                self._context,
                region,
                ScheduleResult(
                    instructions=scheduled,
                    order=list(order),
                    original_cycles=original_cycles,
                    scheduled_cycles=scheduled_cycles,
                ),
                verified=verified,
                digest=digest,
            )
            self.warmed_regions += 1
            self.recorder.count(PARALLEL_REGIONS)

    def _validate_result(self, region, result, expected_digest: str | None = None):
        """Integrity-check one worker result against the region the
        parent shipped; None when it must be rejected.

        Three independent checks: the digest binds the result to *this*
        region's content (``expected_digest`` is the parent-side digest
        computed at collect time, recomputed here only if the caller
        has none); the order must be a permutation of the region's
        indices (a corrupted permutation could otherwise drop or
        duplicate instructions); the checksum binds the cycle counts
        and verified bit to the digest, catching tampering between the
        worker computing and the parent consuming.
        """
        try:
            digest, order, original_cycles, scheduled_cycles, verified, checksum = (
                result
            )
            order = tuple(int(i) for i in order)
        except (TypeError, ValueError):
            return None
        if expected_digest is None:
            expected_digest = region_digest(region)
        if digest != expected_digest:
            return None
        if sorted(order) != list(range(len(region))):
            return None
        if checksum != schedule_checksum(
            digest, order, original_cycles, scheduled_cycles, verified
        ):
            return None
        return order, int(original_cycles), int(scheduled_cycles), bool(verified)

    def _merge_telemetry(self, snapshot) -> None:
        """Fold a worker's metrics snapshot into the parent recorder.

        ``pipeline.*`` is excluded: the layout pass replays hazard
        attribution on every cache hit (once per *occurrence*, exactly
        as a serial run attributes), while the worker issued each unique
        region once — merging both would double-count. Everything else
        (``scheduler.*`` decisions, ``core.*`` phase timers) happens
        once per unique region in a cached serial run too, so the merge
        makes ``--jobs N --stats`` match ``--jobs 1 --stats``.
        """
        if snapshot is None:
            return
        registry = getattr(self.recorder, "metrics", None)
        if registry is None or not hasattr(registry, "merge_snapshot"):
            return
        registry.merge_snapshot(snapshot, skip_prefixes=("pipeline.",))


# -- the one-stop factory --------------------------------------------------------


def make_transform(
    model: MachineModel,
    policy: SchedulingPolicy | None = None,
    recorder: Recorder | None = None,
    *,
    options: ParallelOptions | None = None,
    cache: ScheduleCache | None = None,
    guarded: bool = False,
    guard_budget: GuardBudget | None = None,
    strict: bool = False,
    verify_trials: int = 4,
    verify_seed: int = DEFAULT_SEED,
    superblock: bool | SuperblockConfig = False,
    profile=None,
):
    """The editor transform for a (jobs, cache) configuration.

    Returns a plain :class:`BlockScheduler` / :class:`GuardedBlockScheduler`
    when ``jobs == 1``, or a :class:`ParallelScheduler` wrapping one
    when ``jobs > 1``. Pass ``cache`` to share one
    :class:`ScheduleCache` across calls (warm runs); otherwise a fresh
    cache is created per transform — and discarded entirely when
    ``use_cache`` is off (it then only transports worker results within
    a single build).

    ``superblock`` (True, or a
    :class:`~repro.core.superblock.SuperblockConfig`) wraps the result
    in a :class:`~repro.core.superblock.SuperblockScheduler` as the
    outermost layer: it plans profile-guided cross-block regions first
    and forwards everything else — including the parallel prepare hook,
    minus the blocks it claimed — to the transform described above.
    ``profile`` supplies its block execution frequencies.
    """
    options = options or ParallelOptions()
    if cache is None and (options.use_cache or options.jobs > 1):
        cache = ScheduleCache(
            max_entries=options.cache_entries, recorder=recorder
        )
    if not options.use_cache and options.jobs <= 1:
        cache = None
    if guarded:
        inner = GuardedBlockScheduler(
            model,
            policy,
            recorder,
            budget=guard_budget,
            strict=strict,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
            cache=cache,
        )
    else:
        inner = BlockScheduler(model, policy, recorder, cache=cache)
    transform = inner
    if options.jobs > 1:
        transform = ParallelScheduler(
            inner,
            cache,
            jobs=options.jobs,
            recorder=recorder,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
            start_method=options.start_method,
            shard_deadline_s=options.shard_deadline_s,
            max_shard_retries=options.max_shard_retries,
            persistent_pool=options.persistent_pool,
        )
    if superblock:
        config = superblock if isinstance(superblock, SuperblockConfig) else None
        transform = SuperblockScheduler(
            model,
            policy,
            recorder,
            inner=transform,
            config=config,
            profile=profile,
            guarded=guarded,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
            cache=cache,
        )
    return transform
