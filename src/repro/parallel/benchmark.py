"""Serial vs parallel vs warm-cache measurement for one workload.

Shared by ``qpt benchmarks`` and ``benchmarks/bench_headline.py``: build
the same instrumented-and-scheduled executable under several (jobs,
cache) configurations, time each build, and cross-check that every
configuration produced byte-identical output — the differential claim,
measured on the way past.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.dependence import SchedulingPolicy
from ..obs.recorder import Recorder
from ..qpt.profiling import SlowProfiler
from ..spawn.model import MachineModel
from ..workloads.generator import SyntheticProgram
from .cache import ScheduleCache
from .executor import ParallelOptions, make_transform
from .pool import warm_pool


@dataclass
class ModeTiming:
    """One configuration's build, timed."""

    mode: str
    jobs: int
    wall_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    text_bytes: bytes = field(repr=False, default=b"")

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class ScalingReport:
    """Every mode's timing plus the byte-equality verdict."""

    benchmark: str
    machine: str
    modes: list[ModeTiming]
    identical: bool
    #: one-time persistent-pool spawn + worker warm cost, paid at
    #: service start rather than per build; reported separately so the
    #: ``parallel`` mode reflects the pool's steady state.
    pool_spawn_s: float = 0.0

    def speedup(self, mode: str) -> float:
        baseline = self.mode("serial").wall_s
        other = self.mode(mode).wall_s
        return baseline / other if other > 0 else float("inf")

    def mode(self, name: str) -> ModeTiming:
        for timing in self.modes:
            if timing.mode == name:
                return timing
        raise KeyError(f"no mode {name!r} in report")


def _build(
    model: MachineModel,
    policy: SchedulingPolicy,
    program: SyntheticProgram,
    *,
    options: ParallelOptions,
    cache: ScheduleCache | None,
    guarded: bool,
    recorder: Recorder | None,
) -> bytes:
    transform = make_transform(
        model,
        policy,
        recorder,
        options=options,
        cache=cache,
        guarded=guarded,
    )
    profiled = SlowProfiler(program.executable, recorder=recorder).instrument(
        transform
    )
    return bytes(profiled.executable.text_section().data)


def measure_modes(
    model: MachineModel,
    program: SyntheticProgram,
    *,
    benchmark: str = "workload",
    policy: SchedulingPolicy | None = None,
    jobs: int = 4,
    guarded: bool = False,
    recorder: Recorder | None = None,
    repeats: int = 1,
) -> ScalingReport:
    """Time serial / parallel / warm-cache builds of the same edit.

    Modes measured: ``serial`` (jobs=1, no cache), ``cached-cold``
    (jobs=1, fresh cache), ``parallel`` (jobs=N, fresh cache), and
    ``cached-warm`` (jobs=1 against the cache the parallel build
    populated — the steady state of repeated edits).

    The persistent worker pool is warmed *before* the parallel mode is
    timed and its spawn cost reported separately
    (:attr:`ScalingReport.pool_spawn_s`): the pool spawns once per
    process — at daemon start in production — so folding its one-time
    fork/model-build cost into every measured build would misstate the
    steady state the pool exists to provide.

    ``repeats`` re-runs every mode that many times and reports each
    mode's *fastest* wall time — the standard noise floor for
    single-shot wall benchmarks on a shared machine (noise is strictly
    additive). Every repeat of every mode must still emit identical
    bytes; a fresh schedule cache is used per repeat where the mode
    calls for a cold one.
    """
    policy = policy or SchedulingPolicy(fill_delay_slots=True)
    repeats = max(1, int(repeats))
    modes: list[ModeTiming] = []

    divergent = False

    def timed(
        mode: str,
        *,
        options: ParallelOptions,
        cache_factory=None,
        cache: ScheduleCache | None = None,
    ) -> ScheduleCache | None:
        nonlocal divergent
        best = None
        first_text = None
        for _ in range(repeats):
            run_cache = cache_factory() if cache_factory is not None else cache
            hits0 = run_cache.hits if run_cache is not None else 0
            misses0 = run_cache.misses if run_cache is not None else 0
            start = time.perf_counter()
            text = _build(
                model,
                policy,
                program,
                options=options,
                cache=run_cache,
                guarded=guarded,
                recorder=recorder,
            )
            wall = time.perf_counter() - start
            if first_text is None:
                first_text = text
            elif text != first_text:
                divergent = True
            timing = ModeTiming(
                mode=mode,
                jobs=options.jobs,
                wall_s=wall,
                cache_hits=(run_cache.hits - hits0) if run_cache is not None else 0,
                cache_misses=(
                    (run_cache.misses - misses0) if run_cache is not None else 0
                ),
                text_bytes=text,
            )
            if best is None or timing.wall_s < best.wall_s:
                best = timing
        modes.append(best)
        return run_cache

    timed("serial", options=ParallelOptions(jobs=1, use_cache=False))
    timed(
        "cached-cold",
        options=ParallelOptions(jobs=1),
        cache_factory=ScheduleCache,
    )
    spawn_start = time.perf_counter()
    warm_pool(model, jobs=jobs, recorder=recorder)
    # One untimed build through the pool (throwaway schedule cache): the
    # first build in a fresh process additionally pays one-time lazy
    # transition-table learning, which it persists back to the disk
    # cache when done. Production pays both at daemon start, so the
    # timed ``parallel`` mode below — against a *fresh* cache — is the
    # pool's steady state on a cold schedule cache, which is the number
    # the mode exists to report. The one-time cost is not hidden: it is
    # part of ``pool_spawn_s``.
    _build(
        model,
        policy,
        program,
        options=ParallelOptions(jobs=jobs),
        cache=ScheduleCache(),
        guarded=guarded,
        recorder=None,
    )
    pool_spawn_s = time.perf_counter() - spawn_start
    warm = timed(
        "parallel",
        options=ParallelOptions(jobs=jobs),
        cache_factory=ScheduleCache,
    )
    timed("cached-warm", options=ParallelOptions(jobs=1), cache=warm)

    reference = modes[0].text_bytes
    identical = (
        all(mode.text_bytes == reference for mode in modes) and not divergent
    )
    return ScalingReport(
        benchmark=benchmark,
        machine=model.name,
        modes=modes,
        identical=identical,
        pool_spawn_s=pool_spawn_s,
    )


def render_report(report: ScalingReport) -> str:
    lines = [
        f"{report.benchmark} on {report.machine}: "
        + ("all modes byte-identical" if report.identical else "OUTPUT DIVERGED")
        + (
            f"  (pool spawn {report.pool_spawn_s * 1e3:.0f} ms, once per process)"
            if report.pool_spawn_s
            else ""
        ),
        f"  {'mode':<12} {'jobs':>4} {'wall ms':>9} {'hits':>6} {'misses':>7} {'hit rate':>9} {'speedup':>8}",
    ]
    for timing in report.modes:
        lines.append(
            f"  {timing.mode:<12} {timing.jobs:>4} {timing.wall_s * 1e3:>9.1f}"
            f" {timing.cache_hits:>6} {timing.cache_misses:>7}"
            f" {timing.hit_rate:>9.1%}"
            f" {report.speedup(timing.mode):>7.2f}x"
        )
    return "\n".join(lines)
