"""Serial vs parallel vs warm-cache measurement for one workload.

Shared by ``qpt benchmarks`` and ``benchmarks/bench_headline.py``: build
the same instrumented-and-scheduled executable under several (jobs,
cache) configurations, time each build, and cross-check that every
configuration produced byte-identical output — the differential claim,
measured on the way past.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.dependence import SchedulingPolicy
from ..obs.recorder import Recorder
from ..qpt.profiling import SlowProfiler
from ..spawn.model import MachineModel
from ..workloads.generator import SyntheticProgram
from .cache import ScheduleCache
from .executor import ParallelOptions, make_transform


@dataclass
class ModeTiming:
    """One configuration's build, timed."""

    mode: str
    jobs: int
    wall_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    text_bytes: bytes = field(repr=False, default=b"")

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class ScalingReport:
    """Every mode's timing plus the byte-equality verdict."""

    benchmark: str
    machine: str
    modes: list[ModeTiming]
    identical: bool

    def speedup(self, mode: str) -> float:
        baseline = self.mode("serial").wall_s
        other = self.mode(mode).wall_s
        return baseline / other if other > 0 else float("inf")

    def mode(self, name: str) -> ModeTiming:
        for timing in self.modes:
            if timing.mode == name:
                return timing
        raise KeyError(f"no mode {name!r} in report")


def _build(
    model: MachineModel,
    policy: SchedulingPolicy,
    program: SyntheticProgram,
    *,
    options: ParallelOptions,
    cache: ScheduleCache | None,
    guarded: bool,
    recorder: Recorder | None,
) -> bytes:
    transform = make_transform(
        model,
        policy,
        recorder,
        options=options,
        cache=cache,
        guarded=guarded,
    )
    profiled = SlowProfiler(program.executable, recorder=recorder).instrument(
        transform
    )
    return bytes(profiled.executable.text_section().data)


def measure_modes(
    model: MachineModel,
    program: SyntheticProgram,
    *,
    benchmark: str = "workload",
    policy: SchedulingPolicy | None = None,
    jobs: int = 4,
    guarded: bool = False,
    recorder: Recorder | None = None,
) -> ScalingReport:
    """Time serial / parallel / warm-cache builds of the same edit.

    Modes measured: ``serial`` (jobs=1, no cache), ``cached-cold``
    (jobs=1, fresh cache), ``parallel`` (jobs=N, fresh cache), and
    ``cached-warm`` (jobs=1 against the cache the parallel build
    populated — the steady state of repeated edits).
    """
    policy = policy or SchedulingPolicy(fill_delay_slots=True)
    modes: list[ModeTiming] = []

    def timed(mode: str, *, options: ParallelOptions, cache: ScheduleCache | None):
        hits0 = cache.hits if cache is not None else 0
        misses0 = cache.misses if cache is not None else 0
        start = time.perf_counter()
        text = _build(
            model,
            policy,
            program,
            options=options,
            cache=cache,
            guarded=guarded,
            recorder=recorder,
        )
        wall = time.perf_counter() - start
        modes.append(
            ModeTiming(
                mode=mode,
                jobs=options.jobs,
                wall_s=wall,
                cache_hits=(cache.hits - hits0) if cache is not None else 0,
                cache_misses=(cache.misses - misses0) if cache is not None else 0,
                text_bytes=text,
            )
        )

    timed("serial", options=ParallelOptions(jobs=1, use_cache=False), cache=None)
    cold = ScheduleCache()
    timed("cached-cold", options=ParallelOptions(jobs=1), cache=cold)
    warm = ScheduleCache()
    timed("parallel", options=ParallelOptions(jobs=jobs), cache=warm)
    timed("cached-warm", options=ParallelOptions(jobs=1), cache=warm)

    reference = modes[0].text_bytes
    identical = all(mode.text_bytes == reference for mode in modes)
    return ScalingReport(
        benchmark=benchmark,
        machine=model.name,
        modes=modes,
        identical=identical,
    )


def render_report(report: ScalingReport) -> str:
    lines = [
        f"{report.benchmark} on {report.machine}: "
        + ("all modes byte-identical" if report.identical else "OUTPUT DIVERGED"),
        f"  {'mode':<12} {'jobs':>4} {'wall ms':>9} {'hits':>6} {'misses':>7} {'hit rate':>9} {'speedup':>8}",
    ]
    for timing in report.modes:
        lines.append(
            f"  {timing.mode:<12} {timing.jobs:>4} {timing.wall_s * 1e3:>9.1f}"
            f" {timing.cache_hits:>6} {timing.cache_misses:>7}"
            f" {timing.hit_rate:>9.1%}"
            f" {report.speedup(timing.mode):>7.2f}x"
        )
    return "\n".join(lines)
