"""repro — a reproduction of Schnarr & Larus, *Instruction Scheduling and
Executable Editing* (MICRO-29, 1996).

The library re-creates the paper's full stack in Python:

* :mod:`repro.isa` — a SPARC V8 subset: binary encode/decode, an
  assembler, and a functional simulator.
* :mod:`repro.sadl` — the Spawn Architecture Description Language,
  including the microarchitectural timing/resource extension the paper
  introduces (``unit`` declarations and the ``A``/``R``/``AR``/``D``
  commands).
* :mod:`repro.spawn` — the description compiler: timing-group formation
  and generation of the specialized ``pipeline_stalls`` routine, plus
  shipped hyperSPARC / SuperSPARC / UltraSPARC descriptions.
* :mod:`repro.pipeline` — the in-order superscalar pipeline model and
  the Appendix-A ``pipeline_stalls`` computation.
* :mod:`repro.eel` — the executable editing library: executable images,
  CFG recovery, liveness, instrumentation insertion and relayout.
* :mod:`repro.core` — the paper's contribution: the two-pass local list
  scheduler that interleaves instrumentation with program code.
* :mod:`repro.qpt` — QPT2's "slow profiling" basic-block counting
  instrumentation.
* :mod:`repro.workloads` — SPEC95-calibrated synthetic programs and real
  kernels.
* :mod:`repro.cache` — the Lebeck–Wood instrumentation i-cache model.
* :mod:`repro.evaluation` — the experiment harness that regenerates the
  paper's Tables 1–3.
* :mod:`repro.obs` — zero-dependency observability: recorders (metrics,
  Chrome trace events) and hazard-attribution telemetry threaded through
  the whole scheduling pipeline.
* :mod:`repro.robust` — verify-and-fallback guarded scheduling,
  per-block/per-routine budgets, and a fault-injection harness; the
  unified error taxonomy is rooted at :class:`repro.errors.ReproError`.
* :mod:`repro.parallel` — the content-addressed schedule cache and the
  parallel routine scheduler, byte-identical to a serial run.
* :mod:`repro.analyze` — static analysis: the lint framework (SADL
  description and whole-image rules, JSON/SARIF emitters) and the
  static pre-verifier that proves schedules legal without executing
  them.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
