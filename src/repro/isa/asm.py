"""A small two-pass SPARC V8 assembler.

The assembler exists so tests, example programs, and the workload
kernels can be written in readable assembly rather than as Instruction
constructor calls. It supports the supported-subset mnemonics, the usual
pseudo-ops (``set``, ``mov``, ``cmp``, ``clr``, ``tst``, ``inc``,
``dec``, ``b``, ``ret``, ``retl``), labels, ``!``/``#`` comments, and
``%hi(...)``/``%lo(...)`` operators.

Pass one records label addresses; pass two resolves branch/call targets
to word displacements, producing fully concrete instructions ready for
:func:`repro.isa.encode.encode`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .instruction import Instruction
from .opcodes import Category, Format, Slot, is_known, lookup
from .registers import G0, Reg, parse_reg
from . import synth
from ..errors import ReproError


class AsmError(ReproError, ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, line_no: int, text: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {text.strip()!r}")
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_MEM_RE = re.compile(r"^\[(.+)\]$")
_HILO_RE = re.compile(r"^%(hi|lo)\((.+)\)$")


@dataclass
class _Pending:
    """An instruction plus the line it came from, pre-resolution."""

    inst: Instruction
    line_no: int
    text: str


def _parse_int(text: str) -> int:
    return int(text, 0)


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas not inside brackets/parens."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Assembler:
    """Two-pass assembler over a block of source text."""

    def __init__(self, *, base_address: int = 0) -> None:
        self.base_address = base_address
        self._pending: list[_Pending] = []
        self.labels: dict[str, int] = {}
        self._equ: dict[str, int] = {}

    # -- public API ----------------------------------------------------------

    def assemble(self, source: str) -> list[Instruction]:
        """Assemble ``source`` and return resolved instructions."""
        for line_no, raw in enumerate(source.splitlines(), start=1):
            self._consume_line(line_no, raw)
        return self._resolve()

    def define(self, name: str, value: int) -> None:
        """Pre-define a symbol (like ``.equ``), usable in operands."""
        self._equ[name] = value

    # -- pass one --------------------------------------------------------------

    def _consume_line(self, line_no: int, raw: str) -> None:
        text = raw.split("!")[0].split("#")[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if match and not is_known(match.group(1)):
                self._add_label(line_no, match.group(1))
                text = match.group(2).strip()
                continue
            break
        if not text:
            return
        if text.startswith(".equ"):
            _, name, value = text.split()
            self._equ[name.rstrip(",")] = _parse_int(value)
            return
        self._add_instruction(line_no, text)

    def _add_label(self, line_no: int, name: str) -> None:
        if name in self.labels:
            raise AsmError(line_no, name, "duplicate label")
        self.labels[name] = self.base_address + 4 * len(self._pending)

    def _here(self) -> int:
        return self.base_address + 4 * len(self._pending)

    def _emit(self, inst: Instruction, line_no: int, text: str) -> None:
        self._pending.append(_Pending(inst.with_seq(len(self._pending)), line_no, text))

    def _add_instruction(self, line_no: int, text: str) -> None:
        fields = text.split(None, 1)
        mnemonic = fields[0].lower()
        operand_text = fields[1] if len(fields) > 1 else ""
        annul = False
        if mnemonic.endswith(",a"):
            mnemonic, annul = mnemonic[:-2], True
        operands = _split_operands(operand_text)
        try:
            for inst in self._build(mnemonic, operands, annul):
                self._emit(inst, line_no, text)
        except AsmError:
            raise
        except (ValueError, KeyError, IndexError) as exc:
            raise AsmError(line_no, text, str(exc)) from exc

    # -- instruction construction ----------------------------------------------

    def _build(self, mnemonic: str, ops: list[str], annul: bool) -> list[Instruction]:
        pseudo = getattr(self, f"_pseudo_{mnemonic}", None)
        if pseudo is not None:
            return pseudo(ops)
        if not is_known(mnemonic):
            raise ValueError(f"unknown mnemonic {mnemonic!r}")
        info = lookup(mnemonic)
        if info.fmt is Format.CALL:
            return [self._control(mnemonic, ops[0], annul=False)]
        if info.fmt is Format.BRANCH:
            return [self._control(mnemonic, ops[0], annul=annul)]
        if mnemonic == "sethi":
            return [self._sethi(ops)]
        if mnemonic == "nop":
            return [Instruction("nop", imm=0)]
        if mnemonic == "jmpl":
            return [self._jmpl(ops)]
        if info.fmt is Format.MEM:
            return [self._memory(mnemonic, info, ops)]
        if info.fmt is Format.FPOP:
            return [self._fpop(mnemonic, info, ops)]
        return [self._arith(mnemonic, info, ops)]

    def _control(self, mnemonic: str, dest: str, *, annul: bool) -> Instruction:
        try:
            value = self._value(dest)
        except ValueError:
            return Instruction(mnemonic, target=dest, annul=annul)
        # Numeric destination: absolute address, converted to displacement.
        disp = (value - self._here()) // 4
        return Instruction(mnemonic, imm=disp, annul=annul)

    def _jmpl(self, ops: list[str]) -> Instruction:
        """``jmpl <address>, %rd`` with an unbracketed address expression."""
        addr_text, rd_text = ops
        rs1, rs2, imm = self._address(f"[{addr_text.strip()}]")
        return Instruction("jmpl", rd=parse_reg(rd_text), rs1=rs1, rs2=rs2, imm=imm)

    def _sethi(self, ops: list[str]) -> Instruction:
        value_text, rd_text = ops
        match = _HILO_RE.match(value_text.replace(" ", ""))
        if match:
            if match.group(1) != "hi":
                raise ValueError("sethi needs %hi(...)")
            value = synth.hi22(self._value(match.group(2)))
        else:
            value = self._value(value_text)
        return Instruction("sethi", rd=parse_reg(rd_text), imm=value)

    def _memory(self, mnemonic: str, info, ops: list[str]) -> Instruction:
        if info.memory == "store":
            data_text, addr_text = ops
        else:
            addr_text, data_text = ops
        rs1, rs2, imm = self._address(addr_text)
        return Instruction(
            mnemonic, rd=parse_reg(data_text), rs1=rs1, rs2=rs2, imm=imm
        )

    def _address(self, text: str) -> tuple[Reg, Reg | None, int | None]:
        match = _MEM_RE.match(text.strip())
        if not match:
            raise ValueError(f"expected [address], got {text!r}")
        inner = match.group(1).strip()
        for sep in ("+", "-"):
            if sep in inner[1:]:
                left, right = inner.split(sep, 1)
                base = parse_reg(left)
                right = right.strip()
                if right.startswith("%") and not _HILO_RE.match(right):
                    if sep == "-":
                        raise ValueError("register offsets cannot be negative")
                    return base, parse_reg(right), None
                value = self._operand_value(right)
                return base, None, -value if sep == "-" else value
        return parse_reg(inner), None, 0

    def _fpop(self, mnemonic: str, info, ops: list[str]) -> Instruction:
        regs = [parse_reg(op) for op in ops]
        if info.category is Category.FPCMP:
            return Instruction(mnemonic, rs1=regs[0], rs2=regs[1])
        if Slot.RS1 in info.operand_kinds:
            return Instruction(mnemonic, rs1=regs[0], rs2=regs[1], rd=regs[2])
        return Instruction(mnemonic, rs2=regs[0], rd=regs[1])

    def _arith(self, mnemonic: str, info, ops: list[str]) -> Instruction:
        kinds = info.operand_kinds
        fields: dict[str, Reg | None] = {"rd": None, "rs1": None}
        rs2: Reg | None = None
        imm: int | None = None
        expected = [s for s in (Slot.RS1, Slot.RS2, Slot.RD) if s in kinds]
        if mnemonic == "rdy":
            expected = [Slot.RD]
        if len(ops) != len(expected):
            raise ValueError(
                f"{mnemonic} expects {len(expected)} operands, got {len(ops)}"
            )
        for slot, text in zip(expected, ops):
            if slot is Slot.RS2:
                if text.startswith("%") and not _HILO_RE.match(text.replace(" ", "")):
                    rs2 = parse_reg(text)
                else:
                    imm = self._operand_value(text)
            else:
                fields[slot.value] = parse_reg(text)
        return Instruction(mnemonic, rd=fields["rd"], rs1=fields["rs1"], rs2=rs2, imm=imm)

    # -- pseudo-ops -------------------------------------------------------------

    def _pseudo_set(self, ops: list[str]) -> list[Instruction]:
        value = self._value(ops[0])
        return synth.set_constant(value, parse_reg(ops[1]))

    def _pseudo_mov(self, ops: list[str]) -> list[Instruction]:
        src = ops[0]
        if src.startswith("%") and not _HILO_RE.match(src.replace(" ", "")):
            return [synth.mov(parse_reg(src), parse_reg(ops[1]))]
        return [synth.mov(self._operand_value(src), parse_reg(ops[1]))]

    def _pseudo_cmp(self, ops: list[str]) -> list[Instruction]:
        src2 = ops[1]
        if src2.startswith("%"):
            return [synth.cmp(parse_reg(ops[0]), parse_reg(src2))]
        return [synth.cmp(parse_reg(ops[0]), self._operand_value(src2))]

    def _pseudo_clr(self, ops: list[str]) -> list[Instruction]:
        return [synth.clr(parse_reg(ops[0]))]

    def _pseudo_tst(self, ops: list[str]) -> list[Instruction]:
        return [synth.tst(parse_reg(ops[0]))]

    def _pseudo_inc(self, ops: list[str]) -> list[Instruction]:
        amount = self._value(ops[0]) if len(ops) == 2 else 1
        return [synth.inc(parse_reg(ops[-1]), amount)]

    def _pseudo_dec(self, ops: list[str]) -> list[Instruction]:
        amount = self._value(ops[0]) if len(ops) == 2 else 1
        return [synth.dec(parse_reg(ops[-1]), amount)]

    def _pseudo_b(self, ops: list[str]) -> list[Instruction]:
        return [self._control("ba", ops[0], annul=False)]

    def _pseudo_ret(self, ops: list[str]) -> list[Instruction]:
        return [synth.ret()]

    def _pseudo_retl(self, ops: list[str]) -> list[Instruction]:
        return [synth.retl()]

    # -- value resolution --------------------------------------------------------

    def _value(self, text: str) -> int:
        text = text.strip()
        if text in self._equ:
            return self._equ[text]
        return _parse_int(text)

    def _operand_value(self, text: str) -> int:
        match = _HILO_RE.match(text.replace(" ", ""))
        if match:
            value = self._value(match.group(2))
            return synth.hi22(value) if match.group(1) == "hi" else synth.lo10(value)
        return self._value(text)

    # -- pass two ----------------------------------------------------------------

    def _resolve(self) -> list[Instruction]:
        resolved = []
        for index, pending in enumerate(self._pending):
            inst = pending.inst
            if inst.target is not None:
                if inst.target not in self.labels:
                    raise AsmError(pending.line_no, pending.text, f"undefined label {inst.target!r}")
                address = self.base_address + 4 * index
                disp = (self.labels[inst.target] - address) // 4
                inst = inst.with_target(None, disp)
            resolved.append(inst)
        return resolved


def assemble(source: str, *, base_address: int = 0) -> list[Instruction]:
    """Assemble ``source`` in one call."""
    return Assembler(base_address=base_address).assemble(source)
