"""SPARC V8 register model.

Registers are identified by :class:`Reg` values — a register *kind*
(integer, floating point, or one of the special resources) plus an index.
``Reg`` values are interned and hashable so they can be used directly as
keys in dependence sets, liveness bit-vectors, and pipeline history maps.

The integer file follows the SPARC naming convention: ``%g0``–``%g7`` are
``r0``–``r7``, ``%o0``–``%o7`` are ``r8``–``r15``, ``%l0``–``%l7`` are
``r16``–``r23``, and ``%i0``–``%i7`` are ``r24``–``r31``. ``%g0`` is
hard-wired to zero: writes are discarded and it never participates in a
data dependence.

Register windows are deliberately flattened: ``save``/``restore`` are
modelled as plain ALU instructions over a single 32-register file, which
is sufficient for local (basic-block) scheduling — a window shift never
occurs inside a block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegKind(enum.Enum):
    """The architectural register files and special resources."""

    INT = "r"
    FP = "f"
    ICC = "icc"
    FCC = "fcc"
    Y = "y"
    PC = "pc"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegKind.{self.name}"


@dataclass(frozen=True, order=True)
class Reg:
    """A single architectural register: a kind plus an index.

    The special resources (``icc``, ``fcc``, ``y``, ``pc``) always use
    index 0.
    """

    kind: RegKind
    index: int

    def __post_init__(self) -> None:
        limit = _FILE_SIZES[self.kind]
        if not 0 <= self.index < limit:
            raise ValueError(
                f"register index {self.index} out of range for "
                f"{self.kind.value} file (size {limit})"
            )
        # Registers key the pipeline's register-history dictionaries,
        # so their hash is on every scheduler hot path: precompute it,
        # along with the dense code used for bitmask dependence tests.
        object.__setattr__(self, "_hash", hash((self.kind, self.index)))
        object.__setattr__(
            self, "code", (_KIND_ORDER[self.kind] << 5) | self.index
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:  # unpickled from pre-memo state
            value = hash((self.kind, self.index))
            object.__setattr__(self, "_hash", value)
            return value

    @property
    def is_zero(self) -> bool:
        """True for ``%g0``, the hard-wired zero register."""
        return self.kind is RegKind.INT and self.index == 0

    @property
    def name(self) -> str:
        """The conventional assembly name, e.g. ``%o1`` or ``%f4``."""
        if self.kind is RegKind.INT:
            bank, offset = divmod(self.index, 8)
            return "%" + "goli"[bank] + str(offset)
        if self.kind is RegKind.FP:
            return f"%f{self.index}"
        return "%" + self.kind.value

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Reg({self.name})"


_FILE_SIZES = {
    RegKind.INT: 32,
    RegKind.FP: 32,
    RegKind.ICC: 1,
    RegKind.FCC: 1,
    RegKind.Y: 1,
    RegKind.PC: 1,
}

#: Register kind -> dense ordinal, for :attr:`Reg.code`. Every file has
#: at most 32 registers, so ``(ordinal << 5) | index`` is a unique
#: small integer per architectural register — a bit position for the
#: dependence analyzer's register-set masks.
_KIND_ORDER = {kind: i for i, kind in enumerate(RegKind)}


def reg_code(reg: Reg) -> int:
    """The register's dense integer code (see ``_KIND_ORDER``)."""
    try:
        return reg.code
    except AttributeError:  # unpickled from pre-memo state
        code = (_KIND_ORDER[reg.kind] << 5) | reg.index
        object.__setattr__(reg, "code", code)
        return code


def r(index: int) -> Reg:
    """The integer register ``r<index>`` (0–31)."""
    return Reg(RegKind.INT, index)


def f(index: int) -> Reg:
    """The floating-point register ``%f<index>`` (0–31)."""
    return Reg(RegKind.FP, index)


#: Hard-wired zero register, ``%g0``.
G0 = r(0)

#: Integer condition codes (N, Z, V, C) as one schedulable resource.
ICC = Reg(RegKind.ICC, 0)

#: Floating-point condition codes.
FCC = Reg(RegKind.FCC, 0)

#: The Y register used by integer multiply/divide.
Y = Reg(RegKind.Y, 0)

#: The program counter, read by ``call`` (which saves PC into ``%o7``).
PC = Reg(RegKind.PC, 0)

#: Global registers %g0-%g7.
G = tuple(r(i) for i in range(8))
#: Out registers %o0-%o7 (%o6 is %sp, %o7 holds the call return address).
O = tuple(r(8 + i) for i in range(8))
#: Local registers %l0-%l7.
L = tuple(r(16 + i) for i in range(8))
#: In registers %i0-%i7 (%i6 is %fp, %i7 the caller's return address).
I = tuple(r(24 + i) for i in range(8))

#: Stack pointer (%o6) and frame pointer (%i6).
SP = O[6]
FP_REG = I[6]
#: Call return-address register (%o7).
O7 = O[7]

_NAMED = {
    "%sp": SP,
    "%fp": FP_REG,
    "%icc": ICC,
    "%fcc": FCC,
    "%y": Y,
    "%pc": PC,
}


def parse_reg(text: str) -> Reg:
    """Parse an assembly register name like ``%o3``, ``%f12``, or ``%sp``.

    Raises :class:`ValueError` for anything that is not a register name.
    """
    name = text.strip().lower()
    if name in _NAMED:
        return _NAMED[name]
    if not name.startswith("%") or len(name) < 3:
        raise ValueError(f"not a register name: {text!r}")
    bank, digits = name[1], name[2:]
    if not digits.isdigit():
        raise ValueError(f"not a register name: {text!r}")
    index = int(digits)
    if bank == "r":
        return r(index)
    if bank == "f":
        return f(index)
    if bank in "goli":
        if index >= 8:
            raise ValueError(f"register offset out of range: {text!r}")
        return r("goli".index(bank) * 8 + index)
    raise ValueError(f"unknown register bank in {text!r}")
