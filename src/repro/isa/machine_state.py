"""Architectural machine state for the functional SPARC V8 simulator.

The state is deliberately concrete: integer registers hold 32-bit
patterns, floating-point registers hold raw 32-bit patterns (doubles
occupy an even/odd pair, exactly as on the hardware), and memory is a
sparse byte-addressable big-endian store. Keeping everything at the bit
level lets the differential tests compare *architectural state* between
an original and a scheduled basic block without any tolerance fudging.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from ..errors import ReproError

MASK32 = 0xFFFFFFFF

#: fcc values after fcmps/fcmpd (SPARC V8 encoding).
FCC_EQUAL = 0
FCC_LESS = 1
FCC_GREATER = 2
FCC_UNORDERED = 3


class MemoryFault(ReproError):
    """Raised on misaligned accesses."""


class Memory:
    """Sparse byte-addressable big-endian memory."""

    def __init__(self) -> None:
        self._bytes: dict[int, int] = {}

    def read_byte(self, address: int) -> int:
        return self._bytes.get(address & MASK32, 0)

    def write_byte(self, address: int, value: int) -> None:
        self._bytes[address & MASK32] = value & 0xFF

    def _check_align(self, address: int, size: int) -> None:
        if address % size:
            raise MemoryFault(f"misaligned {size}-byte access at {address:#x}")

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes big-endian as an unsigned integer."""
        self._check_align(address, size)
        value = 0
        for offset in range(size):
            value = (value << 8) | self.read_byte(address + offset)
        return value

    def write(self, address: int, value: int, size: int) -> None:
        """Write ``size`` low-order bytes of ``value`` big-endian."""
        self._check_align(address, size)
        for offset in range(size):
            shift = 8 * (size - 1 - offset)
            self.write_byte(address + offset, (value >> shift) & 0xFF)

    def read_word(self, address: int) -> int:
        return self.read(address, 4)

    def write_word(self, address: int, value: int) -> None:
        self.write(address, value, 4)

    def load_bytes(self, address: int, data: bytes) -> None:
        for offset, byte in enumerate(data):
            self.write_byte(address + offset, byte)

    def dump(self, address: int, length: int) -> bytes:
        return bytes(self.read_byte(address + i) for i in range(length))

    def snapshot(self) -> dict[int, int]:
        """The populated bytes, for state comparison in tests."""
        return {a: b for a, b in self._bytes.items() if b}

    def copy(self) -> "Memory":
        clone = Memory()
        clone._bytes = dict(self._bytes)
        return clone


@dataclass
class MachineState:
    """Full architectural state: register files, condition codes, memory."""

    regs: list[int] = field(default_factory=lambda: [0] * 32)
    fregs: list[int] = field(default_factory=lambda: [0] * 32)
    icc_n: bool = False
    icc_z: bool = False
    icc_v: bool = False
    icc_c: bool = False
    fcc: int = FCC_EQUAL
    y: int = 0
    pc: int = 0
    npc: int = 4
    memory: Memory = field(default_factory=Memory)

    # -- integer registers ---------------------------------------------------

    def get_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & MASK32

    # -- floating point (raw bit patterns) ------------------------------------

    def get_freg(self, index: int) -> int:
        return self.fregs[index]

    def set_freg(self, index: int, value: int) -> None:
        self.fregs[index] = value & MASK32

    def get_single(self, index: int) -> float:
        return struct.unpack(">f", struct.pack(">I", self.fregs[index]))[0]

    def set_single(self, index: int, value: float) -> None:
        try:
            pattern = struct.unpack(">I", struct.pack(">f", value))[0]
        except OverflowError:
            pattern = 0x7F800000 if value > 0 else 0xFF800000
        self.fregs[index] = pattern

    def get_double(self, index: int) -> float:
        if index % 2:
            raise MemoryFault(f"odd double register %f{index}")
        raw = (self.fregs[index] << 32) | self.fregs[index + 1]
        return struct.unpack(">d", struct.pack(">Q", raw))[0]

    def set_double(self, index: int, value: float) -> None:
        if index % 2:
            raise MemoryFault(f"odd double register %f{index}")
        raw = struct.unpack(">Q", struct.pack(">d", value))[0]
        self.fregs[index] = (raw >> 32) & MASK32
        self.fregs[index + 1] = raw & MASK32

    # -- comparisons -----------------------------------------------------------

    def architectural_equal(self, other: "MachineState") -> bool:
        """True when the two states agree on everything a program can
        observe: registers, condition codes, Y, and memory contents."""
        return (
            self.regs == other.regs
            and self.fregs == other.fregs
            and (self.icc_n, self.icc_z, self.icc_v, self.icc_c)
            == (other.icc_n, other.icc_z, other.icc_v, other.icc_c)
            and self.fcc == other.fcc
            and self.y == other.y
            and self.memory.snapshot() == other.memory.snapshot()
        )

    def copy(self) -> "MachineState":
        return MachineState(
            regs=list(self.regs),
            fregs=list(self.fregs),
            icc_n=self.icc_n,
            icc_z=self.icc_z,
            icc_v=self.icc_v,
            icc_c=self.icc_c,
            fcc=self.fcc,
            y=self.y,
            pc=self.pc,
            npc=self.npc,
            memory=self.memory.copy(),
        )
