"""Binary decoding of SPARC V8 instruction words.

The inverse of :mod:`repro.isa.encode`. EEL's analyses (CFG recovery,
liveness, scheduling) all start from decoded instructions, so the decoder
is deliberately strict: an unrecognized word raises :class:`DecodeError`
rather than guessing — past executable editors found that silent
misdecoding was the dominant source of subtle bugs.
"""

from __future__ import annotations

import struct
from typing import Iterator

from .instruction import Instruction
from .opcodes import BICC_CONDS, FBFCC_CONDS, Format, Slot, lookup
from .registers import Reg, RegKind

_BICC_BY_COND = {cond: name for name, cond in BICC_CONDS.items()}
_FBFCC_BY_COND = {cond: name for name, cond in FBFCC_CONDS.items()}

# Reverse tables keyed by op3, built from the opcode table.
_ARITH_BY_OP3: dict[int, str] = {}
_MEM_BY_OP3: dict[int, str] = {}
_FPOP_BY_OPF: dict[tuple[int, int], str] = {}

from . import opcodes as _opcodes  # noqa: E402  (table introspection)
from ..errors import ReproError

for _m in _opcodes.all_mnemonics():
    _info = _opcodes.lookup(_m)
    if _info.fmt is Format.ARITH:
        _ARITH_BY_OP3[_info.op3] = _m
    elif _info.fmt is Format.MEM:
        _MEM_BY_OP3[_info.op3] = _m
    elif _info.fmt is Format.FPOP:
        _FPOP_BY_OPF[(_info.op3, _info.opf)] = _m


class DecodeError(ReproError, ValueError):
    """Raised for instruction words outside the supported V8 subset."""


def _sign_extend(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value & (mask - 1)) - (value & mask)


def _reg(kind: str, num: int) -> Reg:
    return Reg(RegKind.FP if kind == "f" else RegKind.INT, num)


def _check_unused(word: int, field: str, value: int, used: bool) -> None:
    """Operand fields an instruction does not use must encode as zero
    (the encoder writes zeros there); anything else is a corrupt word,
    not a quiet don't-care."""
    if not used and value:
        raise DecodeError(
            f"unused {field} field is {value:#x} in word {word:#010x}"
        )


def decode(word: int) -> Instruction:
    """Decode one 32-bit instruction word into an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise DecodeError(f"not a 32-bit word: {word:#x}")
    op = word >> 30

    if op == 0b01:
        return Instruction("call", imm=_sign_extend(word, 30))

    if op == 0b00:
        return _decode_format2(word)

    rd = (word >> 25) & 0x1F
    op3 = (word >> 19) & 0x3F
    rs1 = (word >> 14) & 0x1F
    use_imm = (word >> 13) & 1
    rs2 = word & 0x1F
    simm13 = _sign_extend(word, 13)

    if op == 0b10 and op3 in (0x34, 0x35):
        opf = (word >> 5) & 0x1FF
        mnemonic = _FPOP_BY_OPF.get((op3, opf))
        if mnemonic is None:
            raise DecodeError(f"unsupported FP opf {opf:#x} in word {word:#010x}")
        info = lookup(mnemonic)
        _check_unused(word, "rd", rd, Slot.RD in info.operand_kinds)
        _check_unused(word, "rs1", rs1, Slot.RS1 in info.operand_kinds)
        return Instruction(
            mnemonic,
            rd=_reg("f", rd) if Slot.RD in info.operand_kinds else None,
            rs1=_reg("f", rs1) if Slot.RS1 in info.operand_kinds else None,
            rs2=_reg("f", rs2),
        )

    table = _ARITH_BY_OP3 if op == 0b10 else _MEM_BY_OP3
    mnemonic = table.get(op3)
    if mnemonic is None:
        raise DecodeError(
            f"unsupported op3 {op3:#x} (op={op:#b}) in word {word:#010x}"
        )
    info = lookup(mnemonic)
    kinds = info.operand_kinds
    if not use_imm and (word >> 5) & 0xFF:
        # The asi field of register-form format 3: always zero in this
        # subset. Rejecting nonzero values here is what makes a flipped
        # bit a DecodeError instead of a silently different instruction.
        raise DecodeError(f"reserved asi bits set in word {word:#010x}")
    _check_unused(word, "rd", rd, Slot.RD in kinds)
    _check_unused(word, "rs1", rs1, Slot.RS1 in kinds)
    if not use_imm:
        _check_unused(word, "rs2", rs2, Slot.RS2 in kinds)
    return Instruction(
        mnemonic,
        rd=_reg(kinds[Slot.RD], rd) if Slot.RD in kinds else None,
        rs1=_reg(kinds[Slot.RS1], rs1) if Slot.RS1 in kinds else None,
        rs2=None if use_imm else (_reg(kinds[Slot.RS2], rs2) if Slot.RS2 in kinds else None),
        imm=simm13 if use_imm else None,
    )


def _decode_format2(word: int) -> Instruction:
    op2 = (word >> 22) & 0b111
    if op2 == 0b100:  # sethi
        rd = (word >> 25) & 0x1F
        imm22 = word & 0x3FFFFF
        if rd == 0 and imm22 == 0:
            return Instruction("nop", imm=0)
        return Instruction("sethi", rd=Reg(RegKind.INT, rd), imm=imm22)
    if op2 in (0b010, 0b110):  # bicc / fbfcc
        annul = bool((word >> 29) & 1)
        cond = (word >> 25) & 0xF
        table = _BICC_BY_COND if op2 == 0b010 else _FBFCC_BY_COND
        return Instruction(table[cond], imm=_sign_extend(word, 22), annul=annul)
    raise DecodeError(f"unsupported format-2 op2 {op2:#b} in word {word:#010x}")


def decode_bytes(data: bytes, *, base_seq: int = 0) -> list[Instruction]:
    """Decode a big-endian byte string into instructions.

    ``seq`` numbers are assigned consecutively starting at ``base_seq``,
    matching the instructions' positions in the byte stream.
    """
    if len(data) % 4:
        raise DecodeError(f"text length {len(data)} is not a multiple of 4")
    out = []
    for i, (word,) in enumerate(struct.iter_unpack(">I", data)):
        out.append(decode(word).with_seq(base_seq + i))
    return out


def iter_words(data: bytes) -> Iterator[int]:
    """Yield the raw 32-bit words of ``data`` (big-endian)."""
    for (word,) in struct.iter_unpack(">I", data):
        yield word
