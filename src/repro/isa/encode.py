"""Binary encoding of SPARC V8 instructions.

Produces the 32-bit big-endian instruction words defined by the V8
architecture manual. This is the half of EEL that writes edited code back
into an executable image; :mod:`repro.isa.decode` is the other half, and
a hypothesis round-trip test pins the two together.
"""

from __future__ import annotations

import struct

from .instruction import Instruction
from .opcodes import Format, Slot, lookup
from .registers import Reg
from ..errors import ReproError


class EncodeError(ReproError, ValueError):
    """Raised when an instruction cannot be represented in SPARC V8."""


def _check_signed(value: int, bits: int, what: str) -> int:
    bound = 1 << (bits - 1)
    if not -bound <= value < bound:
        raise EncodeError(f"{what} {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def _check_unsigned(value: int, bits: int, what: str) -> int:
    if not 0 <= value < (1 << bits):
        raise EncodeError(f"{what} {value} does not fit in {bits} unsigned bits")
    return value


def _regnum(reg: Reg | None) -> int:
    return 0 if reg is None else reg.index


def encode(inst: Instruction) -> int:
    """Encode ``inst`` as a 32-bit instruction word.

    Branch/call displacements must already be resolved to word offsets in
    ``inst.imm`` (symbolic ``target`` still pending is an error — layout
    resolves targets before emission).
    """
    info = lookup(inst.mnemonic)
    if inst.target is not None:
        raise EncodeError(
            f"{inst.mnemonic}: unresolved symbolic target {inst.target!r}"
        )

    if info.fmt is Format.CALL:
        disp = _check_signed(inst.imm or 0, 30, "call displacement")
        return (0b01 << 30) | disp

    if info.fmt is Format.SETHI:
        if inst.mnemonic == "nop":
            return 0b100 << 22  # sethi 0, %g0
        imm22 = _check_unsigned(inst.imm or 0, 22, "sethi imm22")
        return (_regnum(inst.rd) << 25) | (0b100 << 22) | imm22

    if info.fmt is Format.BRANCH:
        op2 = 0b010 if inst.mnemonic.startswith("b") else 0b110
        disp = _check_signed(inst.imm or 0, 22, "branch displacement")
        word = (int(inst.annul) << 29) | (info.cond << 25) | (op2 << 22) | disp
        return word

    if info.fmt is Format.FPOP:
        word = 0b10 << 30
        word |= _regnum(inst.rd) << 25
        word |= info.op3 << 19
        word |= _regnum(inst.rs1) << 14
        word |= info.opf << 5
        word |= _regnum(inst.rs2)
        return word

    # ARITH (op=10) and MEM (op=11) share the format-3 layout.
    op = 0b10 if info.fmt is Format.ARITH else 0b11
    word = op << 30
    word |= _regnum(inst.rd) << 25
    word |= info.op3 << 19
    word |= _regnum(inst.rs1) << 14
    if inst.imm is not None:
        word |= 1 << 13
        word |= _check_signed(inst.imm, 13, f"{inst.mnemonic} simm13")
    else:
        word |= _regnum(inst.rs2)
    return word


def encode_words(instructions: list[Instruction]) -> bytes:
    """Encode a sequence of instructions to big-endian bytes."""
    return b"".join(struct.pack(">I", encode(inst)) for inst in instructions)
