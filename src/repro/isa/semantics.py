"""Functional (architectural) semantics for the supported SPARC V8 subset.

:func:`execute` applies one instruction to a :class:`MachineState`. The
:class:`Simulator` in :mod:`repro.isa.simulator` drives it with full
``pc``/``npc`` delayed-control-transfer semantics; scheduler tests call
:func:`run_straightline` to compare architectural effects of instruction
orderings.

Fidelity notes: all integer arithmetic wraps at 32 bits, condition codes
follow the V8 manual (including carry-as-borrow for subtract), singles
are truncated through an actual IEEE binary32 round-trip, and ``%g0``
stays zero. Traps (divide by zero, misalignment) raise Python exceptions
rather than vectoring — no instrumented program we generate traps.
"""

from __future__ import annotations

import math
import struct
from typing import Callable

from .instruction import Instruction
from .machine_state import (
    FCC_EQUAL,
    FCC_GREATER,
    FCC_LESS,
    FCC_UNORDERED,
    MASK32,
    MachineState,
)
from .opcodes import Category, Format
from ..errors import ReproError

SIGN_BIT = 0x80000000


class SemanticsError(ReproError):
    """Raised when an instruction cannot be executed functionally."""


def _signed(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value & SIGN_BIT else value


def _src2(state: MachineState, inst: Instruction) -> int:
    if inst.imm is not None:
        return inst.imm & MASK32
    if inst.rs2 is None:
        return 0
    return state.get_reg(inst.rs2.index)


def _set_icc_add(state: MachineState, a: int, b: int, result: int) -> None:
    state.icc_n = bool(result & SIGN_BIT)
    state.icc_z = (result & MASK32) == 0
    state.icc_v = bool((~(a ^ b)) & (a ^ result) & SIGN_BIT)
    state.icc_c = (a + b) > MASK32


def _set_icc_sub(state: MachineState, a: int, b: int, result: int) -> None:
    state.icc_n = bool(result & SIGN_BIT)
    state.icc_z = (result & MASK32) == 0
    state.icc_v = bool((a ^ b) & (a ^ result) & SIGN_BIT)
    state.icc_c = b > a  # borrow

def _set_icc_logic(state: MachineState, result: int) -> None:
    state.icc_n = bool(result & SIGN_BIT)
    state.icc_z = (result & MASK32) == 0
    state.icc_v = False
    state.icc_c = False


_LOGIC_OPS: dict[str, Callable[[int, int], int]] = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "andn": lambda a, b: a & ~b,
    "orn": lambda a, b: a | ~b,
    "xnor": lambda a, b: ~(a ^ b),
}

_MEM_SIZES = {
    "ld": 4,
    "ldub": 1,
    "lduh": 2,
    "ldsb": 1,
    "ldsh": 2,
    "st": 4,
    "stb": 1,
    "sth": 2,
    "ldf": 4,
    "stf": 4,
}


def _effective_address(state: MachineState, inst: Instruction) -> int:
    base = state.get_reg(inst.rs1.index) if inst.rs1 is not None else 0
    return (base + _src2(state, inst)) & MASK32


def execute(state: MachineState, inst: Instruction) -> None:
    """Apply ``inst``'s architectural effect to ``state``.

    Control-transfer instructions are rejected here — the simulator
    handles them because they involve ``pc``/``npc``; straight-line
    callers (the scheduler's differential tests) never contain them.
    """
    if inst.is_control:
        raise SemanticsError(f"control transfer {inst.mnemonic} needs the simulator")
    m = inst.mnemonic
    cat = inst.category

    if cat is Category.NOP:
        return

    if cat is Category.SETHI:
        state.set_reg(inst.rd.index, (inst.imm or 0) << 10)
        return

    if cat in (Category.IALU, Category.SHIFT, Category.IMUL, Category.IDIV):
        _execute_integer(state, inst)
        return

    if cat in (Category.LOAD, Category.FPLOAD):
        _execute_load(state, inst)
        return

    if cat in (Category.STORE, Category.FPSTORE):
        _execute_store(state, inst)
        return

    _execute_fp(state, inst)


def _execute_integer(state: MachineState, inst: Instruction) -> None:
    m = inst.mnemonic
    a = state.get_reg(inst.rs1.index) if inst.rs1 is not None else 0
    b = _src2(state, inst)

    if m == "rdy":
        state.set_reg(inst.rd.index, state.y)
        return
    if m == "wry":
        state.y = (a ^ b) & MASK32
        return

    base = m[:-2] if m.endswith("cc") and m not in ("and",) else m
    sets_cc = m.endswith("cc") and m != "and"

    if base in ("add", "save", "restore"):
        result = (a + b) & MASK32
        if sets_cc:
            _set_icc_add(state, a, b, result)
    elif base == "addx":
        result = (a + b + int(state.icc_c)) & MASK32
    elif base == "sub":
        result = (a - b) & MASK32
        if sets_cc:
            _set_icc_sub(state, a, b, result)
    elif base == "subx":
        result = (a - b - int(state.icc_c)) & MASK32
    elif base in _LOGIC_OPS:
        result = _LOGIC_OPS[base](a, b) & MASK32
        if sets_cc:
            _set_icc_logic(state, result)
    elif base == "sll":
        result = (a << (b & 31)) & MASK32
    elif base == "srl":
        result = (a >> (b & 31)) & MASK32
    elif base == "sra":
        result = (_signed(a) >> (b & 31)) & MASK32
    elif base == "umul":
        product = a * b
        state.y = (product >> 32) & MASK32
        result = product & MASK32
    elif base == "smul":
        product = _signed(a) * _signed(b)
        state.y = (product >> 32) & MASK32
        result = product & MASK32
        if sets_cc:
            _set_icc_logic(state, result)
    elif base == "udiv":
        dividend = (state.y << 32) | a
        if b == 0:
            raise SemanticsError("udiv by zero")
        result = min(dividend // b, MASK32)
    elif base == "sdiv":
        dividend = _signed64((state.y << 32) | a)
        divisor = _signed(b)
        if divisor == 0:
            raise SemanticsError("sdiv by zero")
        quotient = int(dividend / divisor)  # trunc toward zero
        result = max(-(1 << 31), min(quotient, (1 << 31) - 1)) & MASK32
    else:  # pragma: no cover - table and dispatch are kept in sync
        raise SemanticsError(f"no integer semantics for {m}")

    if inst.rd is not None:
        state.set_reg(inst.rd.index, result)


def _signed64(value: int) -> int:
    value &= (1 << 64) - 1
    return value - (1 << 64) if value & (1 << 63) else value


def _execute_load(state: MachineState, inst: Instruction) -> None:
    m = inst.mnemonic
    addr = _effective_address(state, inst)
    mem = state.memory
    if m in ("ld", "ldub", "lduh"):
        state.set_reg(inst.rd.index, mem.read(addr, _MEM_SIZES[m]))
    elif m == "ldsb":
        value = mem.read(addr, 1)
        state.set_reg(inst.rd.index, value - 0x100 if value & 0x80 else value)
    elif m == "ldsh":
        value = mem.read(addr, 2)
        state.set_reg(inst.rd.index, value - 0x10000 if value & 0x8000 else value)
    elif m == "ldd":
        state.set_reg(inst.rd.index, mem.read(addr, 4))
        state.set_reg(inst.rd.index | 1, mem.read(addr + 4, 4))
    elif m == "ldf":
        state.set_freg(inst.rd.index, mem.read(addr, 4))
    elif m == "lddf":
        state.set_freg(inst.rd.index, mem.read(addr, 4))
        state.set_freg(inst.rd.index + 1, mem.read(addr + 4, 4))
    else:  # pragma: no cover
        raise SemanticsError(f"no load semantics for {m}")


def _execute_store(state: MachineState, inst: Instruction) -> None:
    m = inst.mnemonic
    addr = _effective_address(state, inst)
    mem = state.memory
    if m in ("st", "stb", "sth"):
        mem.write(addr, state.get_reg(inst.rd.index), _MEM_SIZES[m])
    elif m == "std":
        mem.write(addr, state.get_reg(inst.rd.index), 4)
        mem.write(addr + 4, state.get_reg(inst.rd.index | 1), 4)
    elif m == "stf":
        mem.write(addr, state.get_freg(inst.rd.index), 4)
    elif m == "stdf":
        mem.write(addr, state.get_freg(inst.rd.index), 4)
        mem.write(addr + 4, state.get_freg(inst.rd.index + 1), 4)
    else:  # pragma: no cover
        raise SemanticsError(f"no store semantics for {m}")


def _execute_fp(state: MachineState, inst: Instruction) -> None:
    m = inst.mnemonic
    single = m.endswith("s") and m not in ("fdtos", "fitos")
    get = state.get_single if m[-1] == "s" else state.get_double
    put = state.set_single if m[-1] == "s" else state.set_double

    if m in ("fmovs", "fnegs", "fabss"):
        pattern = state.get_freg(inst.rs2.index)
        if m == "fnegs":
            pattern ^= SIGN_BIT
        elif m == "fabss":
            pattern &= ~SIGN_BIT & MASK32
        state.set_freg(inst.rd.index, pattern)
        return

    if m in ("fcmps", "fcmpd"):
        a = (state.get_single if m == "fcmps" else state.get_double)(inst.rs1.index)
        b = (state.get_single if m == "fcmps" else state.get_double)(inst.rs2.index)
        if math.isnan(a) or math.isnan(b):
            state.fcc = FCC_UNORDERED
        elif a == b:
            state.fcc = FCC_EQUAL
        elif a < b:
            state.fcc = FCC_LESS
        else:
            state.fcc = FCC_GREATER
        return

    if m in ("fsqrts", "fsqrtd"):
        value = get(inst.rs2.index)
        put(inst.rd.index, math.sqrt(value) if value >= 0 else float("nan"))
        return

    if m in ("fitos", "fitod"):
        pattern = state.get_freg(inst.rs2.index)
        put(inst.rd.index, float(_signed(pattern)))
        return
    if m in ("fstoi", "fdtoi"):
        value = state.get_single(inst.rs2.index) if m == "fstoi" else state.get_double(inst.rs2.index)
        state.set_freg(inst.rd.index, int(value) & MASK32 if math.isfinite(value) else 0)
        return
    if m == "fstod":
        state.set_double(inst.rd.index, state.get_single(inst.rs2.index))
        return
    if m == "fdtos":
        state.set_single(inst.rd.index, state.get_double(inst.rs2.index))
        return

    binary = {
        "fadds": lambda a, b: a + b,
        "faddd": lambda a, b: a + b,
        "fsubs": lambda a, b: a - b,
        "fsubd": lambda a, b: a - b,
        "fmuls": lambda a, b: a * b,
        "fmuld": lambda a, b: a * b,
        "fdivs": _fp_div,
        "fdivd": _fp_div,
    }
    if m not in binary:  # pragma: no cover
        raise SemanticsError(f"no FP semantics for {m}")
    a = get(inst.rs1.index)
    b = get(inst.rs2.index)
    put(inst.rd.index, binary[m](a, b))


def _fp_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return float("nan")
        return math.copysign(float("inf"), a) * math.copysign(1.0, b)
    return a / b


def run_straightline(state: MachineState, instructions: list[Instruction]) -> MachineState:
    """Execute a branch-free instruction sequence, returning ``state``.

    This is the workhorse of the scheduler's differential correctness
    tests: original order and scheduled order must leave identical
    architectural state from any starting state.
    """
    for inst in instructions:
        execute(state, inst)
    return state
