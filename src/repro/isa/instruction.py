"""The instruction intermediate representation used throughout the library.

An :class:`Instruction` is an immutable record of one SPARC V8 machine
instruction: a mnemonic, register operands, and an optional immediate or
symbolic branch target. EEL attaches two pieces of provenance that the
paper's scheduler relies on:

* ``tag`` — ``"orig"`` for instructions from the input executable and
  ``"instr"`` for instrumentation added by a tool. The dependence
  analyzer uses the tag to apply the paper's memory-aliasing policy
  (§4: instrumentation memory references are assumed disjoint from the
  original program's).
* ``seq`` — the instruction's position in the original code sequence,
  used as the scheduler's final tie-break ("the instruction listed
  earlier in the original code sequence is chosen").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from .opcodes import Category, Format, OpcodeInfo, Slot, lookup
from .registers import FCC, ICC, O7, PC, Reg, RegKind, Y, reg_code

#: Provenance tags.
TAG_ORIGINAL = "orig"
TAG_INSTRUMENTATION = "instr"


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Exactly one of ``rs2`` / ``imm`` is set for register-or-immediate
    formats; branch and ``sethi`` instructions use ``imm`` for their
    displacement / imm22 and may instead carry a symbolic ``target``
    resolved at layout time.
    """

    mnemonic: str
    rd: Reg | None = None
    rs1: Reg | None = None
    rs2: Reg | None = None
    imm: int | None = None
    annul: bool = False
    target: str | None = None
    tag: str = TAG_ORIGINAL
    seq: int = -1

    def __post_init__(self) -> None:
        info = lookup(self.mnemonic)  # raises KeyError for unknown ops
        object.__setattr__(self, "_info", info)
        if self.rs2 is not None and self.imm is not None:
            raise ValueError(f"{self.mnemonic}: both rs2 and imm given")
        if self.rs2 is None and self.imm is None and self.target is None:
            # Canonical zero-immediate form, so encode/decode round-trips
            # (the hardware has no "absent" rs2 field).
            if info.operand_kinds.get(Slot.RS2) == "r" or info.fmt in (
                Format.CALL,
                Format.SETHI,
                Format.BRANCH,
            ):
                object.__setattr__(self, "imm", 0)
        for slot, reg in ((Slot.RD, self.rd), (Slot.RS1, self.rs1), (Slot.RS2, self.rs2)):
            if reg is None:
                continue
            want = info.operand_kinds.get(slot)
            if want is None:
                raise ValueError(f"{self.mnemonic}: unexpected operand {slot.value}")
            have = "f" if reg.kind is RegKind.FP else "r"
            if reg.kind not in (RegKind.INT, RegKind.FP) or have != want:
                raise ValueError(
                    f"{self.mnemonic}: operand {slot.value} must be an "
                    f"{'fp' if want == 'f' else 'integer'} register, got {reg}"
                )

    # -- static properties -------------------------------------------------

    @property
    def info(self) -> OpcodeInfo:
        try:
            return self._info
        except AttributeError:  # unpickled from pre-memo state
            info = lookup(self.mnemonic)
            object.__setattr__(self, "_info", info)
            return info

    @property
    def category(self) -> Category:
        return self.info.category

    @property
    def is_control(self) -> bool:
        return self.info.is_control

    @property
    def is_branch(self) -> bool:
        return self.info.fmt is Format.BRANCH

    @property
    def is_instrumentation(self) -> bool:
        return self.tag == TAG_INSTRUMENTATION

    @property
    def memory(self) -> str | None:
        """``'load'``, ``'store'``, or ``None``."""
        return self.info.memory

    @property
    def uses_immediate(self) -> bool:
        return self.imm is not None

    # -- effects -----------------------------------------------------------

    def _slot_regs(self, slots: frozenset[Slot]) -> Iterator[Reg]:
        info = self.info
        for slot in slots:
            if slot is Slot.ICC:
                yield ICC
            elif slot is Slot.FCC:
                yield FCC
            elif slot is Slot.Y:
                yield Y
            elif slot is Slot.PC:
                yield PC
            elif slot is Slot.O7:
                yield O7
            else:
                reg = {Slot.RD: self.rd, Slot.RS1: self.rs1, Slot.RS2: self.rs2}[slot]
                if reg is None:
                    continue
                if reg.kind is RegKind.FP and info.fp_width == 2:
                    yield reg
                    yield Reg(RegKind.FP, reg.index + 1)
                else:
                    yield reg

    def regs_read(self) -> frozenset[Reg]:
        """Registers this instruction reads, %g0 excluded.

        Memoized on the instance (instructions are immutable): the
        dependence analyzer asks for the effect sets of the same
        instructions on every scheduling and verification pass."""
        try:
            return self._regs_read
        except AttributeError:
            regs = frozenset(
                x for x in self._slot_regs(self.info.reads) if not x.is_zero
            )
            object.__setattr__(self, "_regs_read", regs)
            return regs

    def regs_written(self) -> frozenset[Reg]:
        """Registers this instruction writes, %g0 excluded. Memoized
        like :meth:`regs_read`."""
        try:
            return self._regs_written
        except AttributeError:
            regs = frozenset(
                x for x in self._slot_regs(self.info.writes) if not x.is_zero
            )
            object.__setattr__(self, "_regs_written", regs)
            return regs

    def read_mask(self) -> int:
        """:meth:`regs_read` as a bitmask over ``Reg.code`` positions —
        the dependence analyzer's pairwise hazard test is three integer
        ANDs instead of set intersections."""
        try:
            return self._read_mask
        except AttributeError:
            mask = 0
            for reg in self.regs_read():
                mask |= 1 << reg_code(reg)
            object.__setattr__(self, "_read_mask", mask)
            return mask

    def write_mask(self) -> int:
        """:meth:`regs_written` as a bitmask over ``Reg.code``."""
        try:
            return self._write_mask
        except AttributeError:
            mask = 0
            for reg in self.regs_written():
                mask |= 1 << reg_code(reg)
            object.__setattr__(self, "_write_mask", mask)
            return mask

    # -- convenience -------------------------------------------------------

    def retag(self, tag: str) -> "Instruction":
        return replace(self, tag=tag)

    def with_seq(self, seq: int) -> "Instruction":
        return replace(self, seq=seq)

    def with_target(self, target: str | None, imm: int | None = None) -> "Instruction":
        return replace(self, target=target, imm=imm)

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(inst: Instruction) -> str:
    """Render an instruction in conventional SPARC assembly syntax."""
    m = inst.mnemonic
    info = inst.info
    if info.category is Category.NOP:
        return "nop"
    if info.fmt is Format.CALL:
        dest = inst.target if inst.target is not None else hex(inst.imm or 0)
        return f"call {dest}"
    if info.fmt is Format.BRANCH:
        dest = inst.target if inst.target is not None else str(inst.imm)
        suffix = ",a" if inst.annul else ""
        return f"{m}{suffix} {dest}"
    if info.fmt is Format.SETHI:
        # Print the full constant (imm22 << 10) so %hi() round-trips
        # through the assembler.
        value = inst.target if inst.target is not None else f"0x{((inst.imm or 0) << 10):x}"
        return f"sethi %hi({value}), {inst.rd}"
    if info.fmt is Format.FPOP:
        ops = [str(x) for x in (inst.rs1, inst.rs2, inst.rd) if x is not None]
        if info.category is Category.FPCMP:
            ops = [str(inst.rs1), str(inst.rs2)]
        return f"{m} {', '.join(ops)}"
    if info.fmt is Format.MEM:
        addr = _format_address(inst)
        if info.memory == "store":
            return f"{m} {inst.rd}, [{addr}]"
        return f"{m} [{addr}], {inst.rd}"
    if m == "jmpl":
        second = str(inst.rs2) if inst.rs2 is not None else str(inst.imm or 0)
        return f"jmpl {inst.rs1} + {second}, {inst.rd}"
    # ARITH
    second = str(inst.rs2) if inst.rs2 is not None else str(inst.imm or 0)
    parts = []
    if inst.rs1 is not None:
        parts.append(str(inst.rs1))
    if Slot.RS2 in info.operand_kinds:
        parts.append(second)
    if inst.rd is not None:
        parts.append(str(inst.rd))
    return f"{m} {', '.join(parts)}"


def _format_address(inst: Instruction) -> str:
    base = str(inst.rs1)
    if inst.rs2 is not None and not inst.rs2.is_zero:
        return f"{base} + {inst.rs2}"
    if inst.imm:
        sign = "+" if inst.imm >= 0 else "-"
        return f"{base} {sign} {abs(inst.imm)}"
    return base


def nop() -> Instruction:
    return Instruction("nop", imm=0)
