"""Synthetic instructions — the standard SPARC assembler idioms.

These helpers build the real V8 instructions underlying the usual
pseudo-ops (``set``, ``mov``, ``cmp``, ``retl`` …). The QPT profiling
snippet and the workload generator compose code from these.
"""

from __future__ import annotations

from .instruction import Instruction
from .registers import G0, O7, Reg, I

SIMM13_MIN = -4096
SIMM13_MAX = 4095


def fits_simm13(value: int) -> bool:
    return SIMM13_MIN <= value <= SIMM13_MAX


def hi22(value: int) -> int:
    """The %hi() operator: the high 22 bits of a 32-bit constant."""
    return (value >> 10) & 0x3FFFFF


def lo10(value: int) -> int:
    """The %lo() operator: the low 10 bits of a 32-bit constant."""
    return value & 0x3FF


def set_constant(value: int, rd: Reg) -> list[Instruction]:
    """The ``set`` pseudo-op: load a 32-bit constant into ``rd``.

    Produces one instruction when possible (``mov`` for small values,
    bare ``sethi`` when the low 10 bits are zero), otherwise the classic
    ``sethi``/``or`` pair.
    """
    value &= 0xFFFFFFFF
    if fits_simm13(value) or fits_simm13(value - (1 << 32)):
        imm = value if fits_simm13(value) else value - (1 << 32)
        return [Instruction("or", rd=rd, rs1=G0, imm=imm)]
    if lo10(value) == 0:
        return [Instruction("sethi", rd=rd, imm=hi22(value))]
    return [
        Instruction("sethi", rd=rd, imm=hi22(value)),
        Instruction("or", rd=rd, rs1=rd, imm=lo10(value)),
    ]


def mov(src: Reg | int, rd: Reg) -> Instruction:
    if isinstance(src, int):
        return Instruction("or", rd=rd, rs1=G0, imm=src)
    return Instruction("or", rd=rd, rs1=G0, rs2=src)


def cmp(rs1: Reg, src2: Reg | int) -> Instruction:
    if isinstance(src2, int):
        return Instruction("subcc", rd=G0, rs1=rs1, imm=src2)
    return Instruction("subcc", rd=G0, rs1=rs1, rs2=src2)


def tst(rs: Reg) -> Instruction:
    return Instruction("orcc", rd=G0, rs1=G0, rs2=rs)


def clr(rd: Reg) -> Instruction:
    return Instruction("or", rd=rd, rs1=G0, rs2=G0)


def inc(rd: Reg, amount: int = 1) -> Instruction:
    return Instruction("add", rd=rd, rs1=rd, imm=amount)


def dec(rd: Reg, amount: int = 1) -> Instruction:
    return Instruction("sub", rd=rd, rs1=rd, imm=amount)


def retl() -> Instruction:
    """Leaf-routine return: ``jmpl %o7 + 8, %g0``."""
    return Instruction("jmpl", rd=G0, rs1=O7, imm=8)


def ret() -> Instruction:
    """Non-leaf return: ``jmpl %i7 + 8, %g0``."""
    return Instruction("jmpl", rd=G0, rs1=I[7], imm=8)
