"""objdump-style disassembly listings.

Renders an executable's text section (or a raw instruction sequence)
with addresses, encoded words, mnemonics, and symbolic labels for branch
targets — the view an executable-editing tool's user actually reads when
checking what the editor did.
"""

from __future__ import annotations

from .encode import encode
from .instruction import Instruction, format_instruction
from .opcodes import Category, Format


def _branch_targets(decoded: list[tuple[int, Instruction]]) -> dict[int, str]:
    """Assign labels (L0, L1, …) to every in-text branch/call target."""
    addresses = {address for address, _ in decoded}
    targets: list[int] = []
    for address, inst in decoded:
        if inst.category in (Category.BRANCH, Category.FBRANCH, Category.CALL):
            target = address + 4 * (inst.imm or 0)
            if target in addresses and target not in targets:
                targets.append(target)
    return {address: f"L{i}" for i, address in enumerate(sorted(targets))}


def format_listing(
    decoded: list[tuple[int, Instruction]],
    *,
    symbols: dict[int, str] | None = None,
    show_words: bool = True,
) -> str:
    """Render (address, instruction) pairs as an assembly listing.

    ``symbols`` maps addresses to names (function symbols); branch
    targets without a symbol get generated ``L<n>`` labels.
    """
    labels = dict(_branch_targets(decoded))
    labels.update(symbols or {})

    lines: list[str] = []
    for address, inst in decoded:
        if address in labels:
            lines.append(f"{labels[address]}:")
        text = format_instruction(inst)
        if inst.category in (Category.BRANCH, Category.FBRANCH, Category.CALL):
            target = address + 4 * (inst.imm or 0)
            if target in labels:
                mnemonic = text.split()[0]
                text = f"{mnemonic} {labels[target]}"
        word = f"{encode(inst):08x}  " if show_words else ""
        lines.append(f"  {address:#010x}:  {word}{text}")
    return "\n".join(lines)


def disassemble_executable(executable, *, show_words: bool = True) -> str:
    """Disassemble an :class:`~repro.eel.executable.Executable`'s text."""
    decoded = executable.decode_text()
    symbols = {s.address: s.name for s in executable.symbols}
    return format_listing(decoded, symbols=symbols, show_words=show_words)
