"""SPARC V8 opcode tables.

Each supported mnemonic has one :class:`OpcodeInfo` entry recording how
the instruction is encoded (format plus the ``op``/``op2``/``op3``/``opf``
field values from the V8 manual), how its operands are laid out, and its
architectural *effects* (which operand slots are read and written, and
whether it touches memory or control flow).

The effect metadata is the single source of truth used by the dependence
analyzer, the liveness analysis, and the functional simulator, mirroring
the paper's point that one description should underlie many manipulation
functions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Format(enum.Enum):
    """SPARC V8 instruction encoding formats."""

    CALL = 1  # op=01: 30-bit word displacement
    SETHI = 2  # op=00, op2=100: rd, imm22
    BRANCH = 3  # op=00, op2=010/110: annul, cond, disp22
    ARITH = 4  # op=10: rd, op3, rs1, i, rs2/simm13
    FPOP = 5  # op=10, op3=0x34/0x35: rd, rs1, opf, rs2
    MEM = 6  # op=11: rd, op3, rs1, i, rs2/simm13


class Category(enum.Enum):
    """Coarse functional class, used to map instructions onto SADL
    semantic groups and by the workload generator's instruction mix."""

    IALU = "ialu"
    SHIFT = "shift"
    IMUL = "imul"
    IDIV = "idiv"
    LOAD = "load"
    STORE = "store"
    FPLOAD = "fpload"
    FPSTORE = "fpstore"
    SETHI = "sethi"
    BRANCH = "branch"
    FBRANCH = "fbranch"
    CALL = "call"
    JMPL = "jmpl"
    FPADD = "fpadd"
    FPMUL = "fpmul"
    FPDIV = "fpdiv"
    FPSQRT = "fpsqrt"
    FPMOVE = "fpmove"
    FPCMP = "fpcmp"
    FPCVT = "fpcvt"
    NOP = "nop"


class Slot(enum.Enum):
    """Operand slots an instruction may read or write.

    ``RD``/``RS1``/``RS2`` name the register fields; the remaining members
    name implicit resources.
    """

    RD = "rd"
    RS1 = "rs1"
    RS2 = "rs2"
    ICC = "icc"
    FCC = "fcc"
    Y = "y"
    PC = "pc"
    O7 = "o7"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: Format
    category: Category
    op3: int | None = None
    opf: int | None = None
    cond: int | None = None
    #: operand register kinds: 'r' (integer) or 'f' (fp) per slot; a slot
    #: absent from the map is unused by this mnemonic.
    operand_kinds: dict[Slot, str] = field(default_factory=dict)
    reads: frozenset[Slot] = frozenset()
    writes: frozenset[Slot] = frozenset()
    #: 'load', 'store', or None.
    memory: str | None = None
    #: True for instructions that end a basic block (branches, calls,
    #: jmpl). These have an architectural delay slot.
    is_control: bool = False
    #: True when the delayed transfer is unconditional (ba, call, jmpl).
    is_unconditional: bool = False
    #: Number of FP registers the fp slots span (1 for single, 2 for
    #: double); used by dependence analysis for %f pairs.
    fp_width: int = 1


_TABLE: dict[str, OpcodeInfo] = {}


def _add(info: OpcodeInfo) -> None:
    if info.mnemonic in _TABLE:
        raise ValueError(f"duplicate opcode {info.mnemonic}")
    _TABLE[info.mnemonic] = info


def _arith(
    mnemonic: str,
    op3: int,
    category: Category = Category.IALU,
    *,
    sets_icc: bool = False,
    reads_icc: bool = False,
    uses_y: bool = False,
    writes_y: bool = False,
) -> None:
    reads = {Slot.RS1, Slot.RS2}
    writes = {Slot.RD}
    if sets_icc:
        writes.add(Slot.ICC)
    if reads_icc:
        reads.add(Slot.ICC)
    if uses_y:
        reads.add(Slot.Y)
    if writes_y:
        writes.add(Slot.Y)
    _add(
        OpcodeInfo(
            mnemonic,
            Format.ARITH,
            category,
            op3=op3,
            operand_kinds={Slot.RD: "r", Slot.RS1: "r", Slot.RS2: "r"},
            reads=frozenset(reads),
            writes=frozenset(writes),
        )
    )


# --- integer arithmetic and logic (op=10) -------------------------------
_arith("add", 0x00)
_arith("and", 0x01)
_arith("or", 0x02)
_arith("xor", 0x03)
_arith("sub", 0x04)
_arith("andn", 0x05)
_arith("orn", 0x06)
_arith("xnor", 0x07)
_arith("addx", 0x08, reads_icc=True)
_arith("subx", 0x0C, reads_icc=True)
_arith("umul", 0x0A, Category.IMUL, writes_y=True)
_arith("smul", 0x0B, Category.IMUL, writes_y=True)
_arith("udiv", 0x0E, Category.IDIV, uses_y=True)
_arith("sdiv", 0x0F, Category.IDIV, uses_y=True)
_arith("addcc", 0x10, sets_icc=True)
_arith("andcc", 0x11, sets_icc=True)
_arith("orcc", 0x12, sets_icc=True)
_arith("xorcc", 0x13, sets_icc=True)
_arith("subcc", 0x14, sets_icc=True)
_arith("smulcc", 0x1B, Category.IMUL, sets_icc=True, writes_y=True)
_arith("sll", 0x25, Category.SHIFT)
_arith("srl", 0x26, Category.SHIFT)
_arith("sra", 0x27, Category.SHIFT)
_arith("save", 0x3C)
_arith("restore", 0x3D)

_add(
    OpcodeInfo(
        "rdy",
        Format.ARITH,
        Category.IALU,
        op3=0x28,
        operand_kinds={Slot.RD: "r"},
        reads=frozenset({Slot.Y}),
        writes=frozenset({Slot.RD}),
    )
)
_add(
    OpcodeInfo(
        "wry",
        Format.ARITH,
        Category.IALU,
        op3=0x30,
        operand_kinds={Slot.RS1: "r", Slot.RS2: "r"},
        reads=frozenset({Slot.RS1, Slot.RS2}),
        writes=frozenset({Slot.Y}),
    )
)
_add(
    OpcodeInfo(
        "jmpl",
        Format.ARITH,
        Category.JMPL,
        op3=0x38,
        operand_kinds={Slot.RD: "r", Slot.RS1: "r", Slot.RS2: "r"},
        reads=frozenset({Slot.RS1, Slot.RS2, Slot.PC}),
        writes=frozenset({Slot.RD}),
        is_control=True,
        is_unconditional=True,
    )
)

# --- sethi and nop (op=00, op2=100) --------------------------------------
_add(
    OpcodeInfo(
        "sethi",
        Format.SETHI,
        Category.SETHI,
        operand_kinds={Slot.RD: "r"},
        writes=frozenset({Slot.RD}),
    )
)
_add(OpcodeInfo("nop", Format.SETHI, Category.NOP))

# --- memory (op=11) -------------------------------------------------------


def _mem(
    mnemonic: str,
    op3: int,
    *,
    store: bool,
    fp: bool = False,
    width: int = 1,
) -> None:
    kinds = {Slot.RD: "f" if fp else "r", Slot.RS1: "r", Slot.RS2: "r"}
    if store:
        reads = frozenset({Slot.RD, Slot.RS1, Slot.RS2})
        writes: frozenset[Slot] = frozenset()
        category = Category.FPSTORE if fp else Category.STORE
    else:
        reads = frozenset({Slot.RS1, Slot.RS2})
        writes = frozenset({Slot.RD})
        category = Category.FPLOAD if fp else Category.LOAD
    _add(
        OpcodeInfo(
            mnemonic,
            Format.MEM,
            category,
            op3=op3,
            operand_kinds=kinds,
            reads=reads,
            writes=writes,
            memory="store" if store else "load",
            fp_width=width,
        )
    )


_mem("ld", 0x00, store=False)
_mem("ldub", 0x01, store=False)
_mem("lduh", 0x02, store=False)
_mem("ldd", 0x03, store=False, width=2)
_mem("st", 0x04, store=True)
_mem("stb", 0x05, store=True)
_mem("sth", 0x06, store=True)
_mem("std", 0x07, store=True, width=2)
_mem("ldsb", 0x09, store=False)
_mem("ldsh", 0x0A, store=False)
_mem("ldf", 0x20, store=False, fp=True)
_mem("lddf", 0x23, store=False, fp=True, width=2)
_mem("stf", 0x24, store=True, fp=True)
_mem("stdf", 0x27, store=True, fp=True, width=2)

# --- branches (op=00, op2=010 integer / op2=110 fp) -----------------------

_BICC_CONDS = {
    "bn": 0,
    "be": 1,
    "ble": 2,
    "bl": 3,
    "bleu": 4,
    "bcs": 5,
    "bneg": 6,
    "bvs": 7,
    "ba": 8,
    "bne": 9,
    "bg": 10,
    "bge": 11,
    "bgu": 12,
    "bcc": 13,
    "bpos": 14,
    "bvc": 15,
}

_FBFCC_CONDS = {
    "fbn": 0,
    "fbne": 1,
    "fblg": 2,
    "fbul": 3,
    "fbl": 4,
    "fbug": 5,
    "fbg": 6,
    "fbu": 7,
    "fba": 8,
    "fbe": 9,
    "fbue": 10,
    "fbge": 11,
    "fbuge": 12,
    "fble": 13,
    "fbule": 14,
    "fbo": 15,
}

for _name, _cond in _BICC_CONDS.items():
    _add(
        OpcodeInfo(
            _name,
            Format.BRANCH,
            Category.BRANCH,
            cond=_cond,
            reads=frozenset() if _name in ("ba", "bn") else frozenset({Slot.ICC}),
            is_control=True,
            is_unconditional=_name == "ba",
        )
    )

for _name, _cond in _FBFCC_CONDS.items():
    _add(
        OpcodeInfo(
            _name,
            Format.BRANCH,
            Category.FBRANCH,
            cond=_cond,
            reads=frozenset() if _name in ("fba", "fbn") else frozenset({Slot.FCC}),
            is_control=True,
            is_unconditional=_name == "fba",
        )
    )

_add(
    OpcodeInfo(
        "call",
        Format.CALL,
        Category.CALL,
        reads=frozenset({Slot.PC}),
        writes=frozenset({Slot.O7}),
        is_control=True,
        is_unconditional=True,
    )
)

# --- floating point (op=10, op3=0x34 FPop1 / 0x35 FPop2) ------------------


def _fpop(
    mnemonic: str,
    opf: int,
    category: Category,
    *,
    op3: int = 0x34,
    unary: bool = False,
    width: int = 1,
    cmp: bool = False,
) -> None:
    kinds: dict[Slot, str] = {Slot.RS2: "f"}
    reads = {Slot.RS2}
    writes: set[Slot] = set()
    if not unary and not cmp:
        kinds[Slot.RS1] = "f"
        reads.add(Slot.RS1)
    if cmp:
        kinds[Slot.RS1] = "f"
        reads.add(Slot.RS1)
        writes.add(Slot.FCC)
    else:
        kinds[Slot.RD] = "f"
        writes.add(Slot.RD)
    _add(
        OpcodeInfo(
            mnemonic,
            Format.FPOP,
            category,
            op3=op3,
            opf=opf,
            operand_kinds=kinds,
            reads=frozenset(reads),
            writes=frozenset(writes),
            fp_width=width,
        )
    )


_fpop("fmovs", 0x01, Category.FPMOVE, unary=True)
_fpop("fnegs", 0x05, Category.FPMOVE, unary=True)
_fpop("fabss", 0x09, Category.FPMOVE, unary=True)
_fpop("fsqrts", 0x29, Category.FPSQRT, unary=True)
_fpop("fsqrtd", 0x2A, Category.FPSQRT, unary=True, width=2)
_fpop("fadds", 0x41, Category.FPADD)
_fpop("faddd", 0x42, Category.FPADD, width=2)
_fpop("fsubs", 0x45, Category.FPADD)
_fpop("fsubd", 0x46, Category.FPADD, width=2)
_fpop("fmuls", 0x49, Category.FPMUL)
_fpop("fmuld", 0x4A, Category.FPMUL, width=2)
_fpop("fdivs", 0x4D, Category.FPDIV)
_fpop("fdivd", 0x4E, Category.FPDIV, width=2)
_fpop("fitos", 0xC4, Category.FPCVT, unary=True)
_fpop("fitod", 0xC8, Category.FPCVT, unary=True, width=2)
_fpop("fstod", 0xC9, Category.FPCVT, unary=True, width=2)
_fpop("fdtos", 0xC6, Category.FPCVT, unary=True, width=2)
_fpop("fstoi", 0xD1, Category.FPCVT, unary=True)
_fpop("fdtoi", 0xD2, Category.FPCVT, unary=True, width=2)
_fpop("fcmps", 0x51, Category.FPCMP, op3=0x35, cmp=True)
_fpop("fcmpd", 0x52, Category.FPCMP, op3=0x35, cmp=True, width=2)


def lookup(mnemonic: str) -> OpcodeInfo:
    """The :class:`OpcodeInfo` for ``mnemonic``; KeyError if unsupported."""
    return _TABLE[mnemonic]


def is_known(mnemonic: str) -> bool:
    return mnemonic in _TABLE


def all_mnemonics() -> tuple[str, ...]:
    """Every supported mnemonic, in a stable order."""
    return tuple(sorted(_TABLE))


#: Branch-condition encodings, exported for the encoder/decoder.
BICC_CONDS = dict(_BICC_CONDS)
FBFCC_CONDS = dict(_FBFCC_CONDS)
