"""Whole-program functional simulator with SPARC delayed control transfer.

This simulator executes *architectural* semantics only — timing lives in
:mod:`repro.pipeline`. It exists for three jobs:

* verifying that an edited (instrumented/scheduled) executable is
  behaviour-identical to the original;
* reading back QPT profiling counters and checking them against true
  basic-block execution counts;
* collecting dynamic execution frequencies for the real workload kernels.

``pc``/``npc`` and branch annul bits follow the V8 manual: a conditional
branch's delay slot is annulled only when the branch is untaken (or
always, for ``ba,a``/``fba,a``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .instruction import Instruction
from .machine_state import MASK32, MachineState
from .opcodes import Category, Format
from .semantics import SemanticsError, _src2, execute

#: Return-to-here address that cleanly stops simulation. Programs are
#: started with ``%o7 = STOP_ADDRESS - 8`` so a final ``retl`` exits.
STOP_ADDRESS = 0xFFFF0000


class SimulationLimit(Exception):
    """Raised when the instruction budget is exhausted (runaway loop)."""


class BadPC(Exception):
    """Raised when control flows outside the program text."""


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    state: MachineState
    instructions_executed: int
    #: dynamic execution count per instruction address.
    execution_counts: Counter = field(default_factory=Counter)

    def count_at(self, address: int) -> int:
        return self.execution_counts.get(address, 0)


class Simulator:
    """Executes a code image (address → instruction) functionally."""

    def __init__(self, code: dict[int, Instruction]) -> None:
        self.code = code

    @classmethod
    def from_instructions(
        cls, instructions: list[Instruction], *, base_address: int = 0x1000
    ) -> "Simulator":
        return cls(
            {base_address + 4 * i: inst for i, inst in enumerate(instructions)}
        )

    def run(
        self,
        entry: int,
        *,
        state: MachineState | None = None,
        max_instructions: int = 2_000_000,
        count_executions: bool = False,
        on_execute=None,
    ) -> RunResult:
        """Run from ``entry`` until control reaches :data:`STOP_ADDRESS`.

        ``on_execute(address, instruction)`` is invoked for every
        dynamically executed instruction (annulled delay slots are
        skipped, so they are not reported) — the timing simulator hooks
        here to drive the pipeline model in true dynamic order.
        """
        if state is None:
            state = MachineState()
        state.pc, state.npc = entry, entry + 4
        state.set_reg(15, (STOP_ADDRESS - 8) & MASK32)  # %o7
        counts: Counter = Counter()
        executed = 0

        while state.pc != STOP_ADDRESS:
            if executed >= max_instructions:
                raise SimulationLimit(f"exceeded {max_instructions} instructions")
            inst = self.code.get(state.pc)
            if inst is None:
                raise BadPC(f"no instruction at {state.pc:#x}")

            executed += 1
            if count_executions:
                counts[state.pc] += 1
            if on_execute is not None:
                on_execute(state.pc, inst)

            if inst.is_control:
                self._execute_control(state, inst)
            else:
                execute(state, inst)
                state.pc, state.npc = state.npc, (state.npc + 4) & MASK32

        state.set_reg(15, 0)  # scrub the sentinel so states compare cleanly
        return RunResult(state=state, instructions_executed=executed, execution_counts=counts)

    # -- control transfer -------------------------------------------------------

    def _execute_control(self, state: MachineState, inst: Instruction) -> None:
        """Execute a control-transfer instruction, applying annulment by
        stepping ``pc`` past the delay slot when required."""
        info = inst.info
        pc = state.pc

        if info.fmt is Format.CALL:
            state.set_reg(15, pc)  # %o7
            target = (pc + 4 * (inst.imm or 0)) & MASK32
            taken = True
        elif inst.mnemonic == "jmpl":
            target = self._jmpl_target(state, inst)
            state.set_reg(inst.rd.index, pc)
            taken = True
        elif info.fmt is Format.BRANCH:
            target = (pc + 4 * (inst.imm or 0)) & MASK32
            taken = _branch_taken(state, inst)
        else:  # pragma: no cover
            raise SemanticsError(f"unhandled control instruction {inst.mnemonic}")

        next_npc = target if taken else (state.npc + 4) & MASK32
        annulled = inst.annul and (info.is_unconditional or not taken)
        if annulled:
            state.pc, state.npc = next_npc, (next_npc + 4) & MASK32
        else:
            state.pc, state.npc = state.npc, next_npc

    @staticmethod
    def _jmpl_target(state: MachineState, inst: Instruction) -> int:
        base = state.get_reg(inst.rs1.index) if inst.rs1 is not None else 0
        return (base + _src2(state, inst)) & MASK32


def _branch_taken(state: MachineState, inst: Instruction) -> bool:
    m = inst.mnemonic
    if inst.category is Category.FBRANCH:
        return state.fcc in _FCC_SETS[m]
    n, z, v, c = state.icc_n, state.icc_z, state.icc_v, state.icc_c
    return _ICC_CONDS[m](n, z, v, c)


_ICC_CONDS = {
    "ba": lambda n, z, v, c: True,
    "bn": lambda n, z, v, c: False,
    "be": lambda n, z, v, c: z,
    "bne": lambda n, z, v, c: not z,
    "ble": lambda n, z, v, c: z or (n != v),
    "bg": lambda n, z, v, c: not (z or (n != v)),
    "bl": lambda n, z, v, c: n != v,
    "bge": lambda n, z, v, c: n == v,
    "bleu": lambda n, z, v, c: c or z,
    "bgu": lambda n, z, v, c: not (c or z),
    "bcs": lambda n, z, v, c: c,
    "bcc": lambda n, z, v, c: not c,
    "bneg": lambda n, z, v, c: n,
    "bpos": lambda n, z, v, c: not n,
    "bvs": lambda n, z, v, c: v,
    "bvc": lambda n, z, v, c: not v,
}

# fcc value sets (E=0, L=1, G=2, U=3) for each fbfcc condition.
_FCC_SETS = {
    "fbn": frozenset(),
    "fbne": frozenset({1, 2, 3}),
    "fblg": frozenset({1, 2}),
    "fbul": frozenset({1, 3}),
    "fbl": frozenset({1}),
    "fbug": frozenset({2, 3}),
    "fbg": frozenset({2}),
    "fbu": frozenset({3}),
    "fba": frozenset({0, 1, 2, 3}),
    "fbe": frozenset({0}),
    "fbue": frozenset({0, 3}),
    "fbge": frozenset({0, 2}),
    "fbuge": frozenset({0, 2, 3}),
    "fble": frozenset({0, 1}),
    "fbule": frozenset({0, 1, 3}),
    "fbo": frozenset({0, 1, 2}),
}
