"""SPARC V8 instruction set architecture substrate.

This package is the foundation everything else builds on: the register
model, the instruction IR, binary encoding/decoding of real V8
instruction words, a small assembler, and a functional simulator used
for differential correctness testing of the scheduler and editor.
"""

from .asm import AsmError, Assembler, assemble
from .decode import DecodeError, decode, decode_bytes
from .disasm import disassemble_executable, format_listing
from .encode import EncodeError, encode, encode_words
from .instruction import (
    TAG_INSTRUMENTATION,
    TAG_ORIGINAL,
    Instruction,
    format_instruction,
    nop,
)
from .machine_state import MachineState, Memory, MemoryFault
from .opcodes import Category, Format, OpcodeInfo, Slot, all_mnemonics, lookup
from .registers import (
    FCC,
    G0,
    ICC,
    O7,
    PC,
    SP,
    Y,
    Reg,
    RegKind,
    f,
    parse_reg,
    r,
)
from .semantics import SemanticsError, execute, run_straightline
from .simulator import (
    STOP_ADDRESS,
    BadPC,
    RunResult,
    SimulationLimit,
    Simulator,
)

__all__ = [
    "AsmError",
    "Assembler",
    "BadPC",
    "Category",
    "DecodeError",
    "EncodeError",
    "FCC",
    "Format",
    "G0",
    "ICC",
    "Instruction",
    "MachineState",
    "Memory",
    "MemoryFault",
    "O7",
    "OpcodeInfo",
    "PC",
    "Reg",
    "RegKind",
    "RunResult",
    "SP",
    "STOP_ADDRESS",
    "SemanticsError",
    "SimulationLimit",
    "Simulator",
    "Slot",
    "TAG_INSTRUMENTATION",
    "TAG_ORIGINAL",
    "Y",
    "all_mnemonics",
    "assemble",
    "decode",
    "decode_bytes",
    "disassemble_executable",
    "encode",
    "format_listing",
    "encode_words",
    "execute",
    "f",
    "format_instruction",
    "lookup",
    "nop",
    "parse_reg",
    "r",
    "run_straightline",
]
