"""Programmatic program construction with labels and per-instruction
execution frequencies.

The workload generator knows, by construction, how often every piece of
the program executes (loop trip counts, branch parity splits). It
records a frequency for each emitted instruction; after CFG recovery the
evaluation harness reads back per-block frequencies without ever having
to run the program. (Tests *do* run the programs functionally with small
trip counts and check the analytic frequencies are exact.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eel.cfg import CFG, build_cfg
from ..eel.executable import DATA_BASE, Executable, TEXT_BASE
from ..eel.image import Section, SectionKind
from ..isa.instruction import Instruction
from ..errors import ReproError


class BuildError(ReproError):
    pass


@dataclass
class ProgramBuilder:
    """Emit instructions with symbolic branch targets and frequencies."""

    text_base: int = TEXT_BASE
    instructions: list[Instruction] = field(default_factory=list)
    frequencies: list[int] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def label(self, name: str) -> None:
        if name in self.labels:
            raise BuildError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)

    def emit(self, inst: Instruction, freq: int) -> None:
        self.instructions.append(inst)
        self.frequencies.append(freq)

    def emit_all(self, instructions: list[Instruction], freq: int) -> None:
        for inst in instructions:
            self.emit(inst, freq)

    def resolve(self) -> list[Instruction]:
        """Resolve symbolic targets to word displacements."""
        resolved = []
        for index, inst in enumerate(self.instructions):
            if inst.target is not None:
                if inst.target not in self.labels:
                    raise BuildError(f"undefined label {inst.target!r}")
                disp = self.labels[inst.target] - index
                inst = inst.with_target(None, disp)
            resolved.append(inst.with_seq(index))
        return resolved

    def build(
        self, *, data: bytes = b"", data_base: int = DATA_BASE
    ) -> tuple[Executable, CFG, dict[int, int]]:
        """Produce (executable, cfg, per-block frequencies)."""
        sections = []
        if data:
            sections.append(Section(".data", SectionKind.DATA, data_base, data))
        exe = Executable.from_instructions(
            self.resolve(), text_base=self.text_base, data_sections=sections
        )
        cfg = build_cfg(exe)
        frequencies: dict[int, int] = {}
        for block in cfg:
            index = (block.address - self.text_base) // 4
            frequencies[block.index] = self.frequencies[index]
        return exe, cfg, frequencies
