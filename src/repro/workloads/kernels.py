"""Hand-written kernels: real programs with checkable answers.

Unlike the synthetic SPEC stand-ins (which are only ever *timed*), these
kernels compute meaningful results in the functional simulator, so the
whole toolchain — editing, profiling, scheduling — can be validated
end to end against known outputs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from ..eel.executable import DATA_BASE, Executable, TEXT_BASE
from ..eel.image import Section, SectionKind, Symbol
from ..isa.asm import Assembler
from ..isa.machine_state import MachineState
from ..isa.simulator import RunResult


@dataclass(frozen=True)
class Kernel:
    """A runnable test program with an expected-result check."""

    name: str
    description: str
    executable: Executable
    check: Callable[[RunResult], bool]
    result_of: Callable[[RunResult], object]


def _assemble(source: str, data: bytes = b"") -> Executable:
    assembler = Assembler(base_address=TEXT_BASE)
    assembler.define("DATA", DATA_BASE)
    program = assembler.assemble(source)
    sections = []
    if data:
        sections.append(Section(".data", SectionKind.DATA, DATA_BASE, data))
    return Executable.from_instructions(
        program,
        text_base=TEXT_BASE,
        data_sections=sections,
        symbols=[Symbol("main", TEXT_BASE)],
    )


def sum_loop(n: int = 100) -> Kernel:
    """Sum the integers 1..n into %o1."""
    exe = _assemble(
        f"""
            clr %o1
            set {n}, %o0
        loop:
            add %o1, %o0, %o1
            subcc %o0, 1, %o0
            bne loop
            nop
            retl
            nop
        """
    )
    expected = n * (n + 1) // 2
    return Kernel(
        name="sum_loop",
        description=f"sum of 1..{n}",
        executable=exe,
        check=lambda res: res.state.get_reg(9) == expected,
        result_of=lambda res: res.state.get_reg(9),
    )


def dot_product(values: list[float] | None = None) -> Kernel:
    """Double-precision dot product of a vector with itself."""
    if values is None:
        values = [1.5, -2.0, 0.25, 4.0, 3.5, -1.25, 2.0, 0.5]
    data = b"".join(struct.pack(">d", v) for v in values)
    n = len(values)
    exe = _assemble(
        f"""
            set DATA, %o0
            set {n}, %o2
            ! %f0:%f1 accumulates; zero it via integer stores
            st %g0, [%o0 + {8 * n}]
            st %g0, [%o0 + {8 * n + 4}]
            lddf [%o0 + {8 * n}], %f0
        loop:
            lddf [%o0], %f2
            fmuld %f2, %f2, %f4
            faddd %f0, %f4, %f0
            add %o0, 8, %o0
            subcc %o2, 1, %o2
            bne loop
            nop
            set DATA, %o0
            stdf %f0, [%o0 + {8 * n}]
            retl
            nop
        """,
        data=data,
    )
    expected = sum(v * v for v in values)

    def result(res: RunResult) -> float:
        raw = res.state.memory.read(DATA_BASE + 8 * n, 4) << 32
        raw |= res.state.memory.read(DATA_BASE + 8 * n + 4, 4)
        return struct.unpack(">d", struct.pack(">Q", raw))[0]

    return Kernel(
        name="dot_product",
        description=f"dot product of {n} doubles",
        executable=exe,
        check=lambda res: abs(result(res) - expected) < 1e-9,
        result_of=result,
    )


def memset_words(count: int = 32, value: int = 0xA5A5A5A5) -> Kernel:
    """Fill ``count`` words with a constant."""
    exe = _assemble(
        f"""
            set DATA, %o0
            set {count}, %o1
            set {value}, %o2
        loop:
            st %o2, [%o0]
            add %o0, 4, %o0
            subcc %o1, 1, %o1
            bne loop
            nop
            retl
            nop
        """
    )

    def ok(res: RunResult) -> bool:
        return all(
            res.state.memory.read_word(DATA_BASE + 4 * i) == value
            for i in range(count)
        )

    return Kernel(
        name="memset_words",
        description=f"fill {count} words",
        executable=exe,
        check=ok,
        result_of=lambda res: res.state.memory.read_word(DATA_BASE),
    )


def fib_iter(n: int = 20) -> Kernel:
    """Iterative Fibonacci: F(n) in %o0."""
    exe = _assemble(
        f"""
            clr %o0            ! F(0)
            mov 1, %o1         ! F(1)
            set {n}, %o2
        loop:
            add %o0, %o1, %o3
            mov %o1, %o0
            mov %o3, %o1
            subcc %o2, 1, %o2
            bne loop
            nop
            retl
            nop
        """
    )

    def fib(k: int) -> int:
        a, b = 0, 1
        for _ in range(k):
            a, b = b, a + b
        return a & 0xFFFFFFFF

    expected = fib(n)
    return Kernel(
        name="fib_iter",
        description=f"Fibonacci F({n})",
        executable=exe,
        check=lambda res: res.state.get_reg(8) == expected,
        result_of=lambda res: res.state.get_reg(8),
    )


def branchy_classify(count: int = 64) -> Kernel:
    """Classify bytes of the data section into three counters — a
    small-block, branch-heavy integer kernel (SPECINT-shaped)."""
    data = bytes((i * 37 + 11) & 0xFF for i in range(count))
    exe = _assemble(
        f"""
            set DATA, %o0
            set {count}, %o1
            clr %o2            ! small
            clr %o3            ! medium
            clr %o4            ! large
        loop:
            ldub [%o0], %o5
            cmp %o5, 85
            bgu medium
            nop
            add %o2, 1, %o2
            ba next
            nop
        medium:
            cmp %o5, 170
            bgu large
            nop
            add %o3, 1, %o3
            ba next
            nop
        large:
            add %o4, 1, %o4
        next:
            add %o0, 1, %o0
            subcc %o1, 1, %o1
            bne loop
            nop
            retl
            nop
        """,
        data=data,
    )
    small = sum(1 for b in data if b <= 85)
    medium = sum(1 for b in data if 85 < b <= 170)
    large = sum(1 for b in data if b > 170)

    def ok(res: RunResult) -> bool:
        return (
            res.state.get_reg(10) == small
            and res.state.get_reg(11) == medium
            and res.state.get_reg(12) == large
        )

    return Kernel(
        name="branchy_classify",
        description="byte classification with a 3-way branch tree",
        executable=exe,
        check=ok,
        result_of=lambda res: (
            res.state.get_reg(10),
            res.state.get_reg(11),
            res.state.get_reg(12),
        ),
    )


def crc_accumulate(count: int = 48) -> Kernel:
    """A shift/xor checksum over the data section — shift-heavy integer
    code (exercises the single shifter on SuperSPARC)."""
    data = bytes((i * 151 + 7) & 0xFF for i in range(count))
    exe = _assemble(
        f"""
            set DATA, %o0
            set {count}, %o1
            clr %o2
        loop:
            ldub [%o0], %o3
            xor %o2, %o3, %o2
            sll %o2, 5, %o4
            srl %o2, 27, %o5
            or %o4, %o5, %o2    ! rotate left 5
            add %o0, 1, %o0
            subcc %o1, 1, %o1
            bne loop
            nop
            retl
            nop
        """,
        data=data,
    )

    def model(values: bytes) -> int:
        crc = 0
        for byte in values:
            crc ^= byte
            crc = ((crc << 5) | (crc >> 27)) & 0xFFFFFFFF
        return crc

    expected = model(data)
    return Kernel(
        name="crc_accumulate",
        description=f"rotate-xor checksum over {count} bytes",
        executable=exe,
        check=lambda res: res.state.get_reg(10) == expected,
        result_of=lambda res: res.state.get_reg(10),
    )


def saxpy(n: int = 12, a: float = 2.5) -> Kernel:
    """Single-precision a*x + y over two vectors — FP streaming code."""
    xs = [0.5 * i - 2.0 for i in range(n)]
    ys = [1.0 / (i + 1) for i in range(n)]
    data = b"".join(struct.pack(">f", v) for v in xs)
    data += b"".join(struct.pack(">f", v) for v in ys)
    # The scalar a, stored after the vectors.
    data += struct.pack(">f", a)
    exe = _assemble(
        f"""
            set DATA, %o0
            set {n}, %o2
            ldf [%o0 + {8 * n}], %f0      ! a
        loop:
            ldf [%o0], %f1                ! x[i]
            ldf [%o0 + {4 * n}], %f2      ! y[i]
            fmuls %f0, %f1, %f3
            fadds %f3, %f2, %f4
            stf %f4, [%o0 + {4 * n}]      ! y[i] = a*x[i] + y[i]
            add %o0, 4, %o0
            subcc %o2, 1, %o2
            bne loop
            nop
            retl
            nop
        """,
        data=data,
    )

    import struct as _struct

    def expected_value(i: int) -> float:
        def f32(v):
            return _struct.unpack(">f", _struct.pack(">f", v))[0]

        return f32(f32(f32(a) * f32(xs[i])) + f32(ys[i]))

    def ok(res: RunResult) -> bool:
        for i in range(n):
            raw = res.state.memory.read_word(DATA_BASE + 4 * n + 4 * i)
            got = _struct.unpack(">f", _struct.pack(">I", raw))[0]
            if abs(got - expected_value(i)) > 1e-6:
                return False
        return True

    return Kernel(
        name="saxpy",
        description=f"single-precision a*x+y over {n} elements",
        executable=exe,
        check=ok,
        result_of=lambda res: res.state.memory.read_word(DATA_BASE + 4 * n),
    )


def popcount_words(count: int = 16) -> Kernel:
    """Population count over words — tight dependent integer loops."""
    data = bytes((i * 97 + 13) & 0xFF for i in range(4 * count))
    exe = _assemble(
        f"""
            set DATA, %o0
            set {count}, %o1
            clr %o2              ! total bits
        words:
            ld [%o0], %o3
            set 32, %o4
        bits:
            and %o3, 1, %o5
            add %o2, %o5, %o2
            srl %o3, 1, %o3
            subcc %o4, 1, %o4
            bne bits
            nop
            add %o0, 4, %o0
            subcc %o1, 1, %o1
            bne words
            nop
            retl
            nop
        """,
        data=data,
    )
    expected = sum(bin(b).count("1") for b in data)
    return Kernel(
        name="popcount_words",
        description=f"popcount over {count} words",
        executable=exe,
        check=lambda res: res.state.get_reg(10) == expected,
        result_of=lambda res: res.state.get_reg(10),
    )


def all_kernels() -> list[Kernel]:
    return [
        sum_loop(),
        dot_product(),
        memset_words(),
        fib_iter(),
        branchy_classify(),
        crc_accumulate(),
        saxpy(),
        popcount_words(),
    ]
