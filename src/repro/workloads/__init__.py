"""Workloads: SPEC95-calibrated synthetic programs and real kernels."""

from .builder import BuildError, ProgramBuilder
from .generator import (
    FP_WORK,
    INT_WORK,
    SyntheticProgram,
    WorkloadSpec,
    generate,
)
from .kernels import (
    Kernel,
    all_kernels,
    branchy_classify,
    crc_accumulate,
    dot_product,
    fib_iter,
    memset_words,
    popcount_words,
    saxpy,
    sum_loop,
)
from .spec95 import (
    CFP95,
    CINT95,
    PAPER_BLOCK_SIZES_SUPER,
    PAPER_BLOCK_SIZES_ULTRA,
    all_benchmarks,
    benchmark_spec,
    generate_benchmark,
    is_fp,
)

__all__ = [
    "BuildError",
    "CFP95",
    "CINT95",
    "FP_WORK",
    "INT_WORK",
    "Kernel",
    "PAPER_BLOCK_SIZES_SUPER",
    "PAPER_BLOCK_SIZES_ULTRA",
    "ProgramBuilder",
    "SyntheticProgram",
    "WorkloadSpec",
    "all_benchmarks",
    "all_kernels",
    "benchmark_spec",
    "branchy_classify",
    "crc_accumulate",
    "dot_product",
    "fib_iter",
    "generate",
    "generate_benchmark",
    "is_fp",
    "memset_words",
    "popcount_words",
    "saxpy",
    "sum_loop",
]
