"""Synthetic SPEC95-shaped workload generation.

The paper's per-benchmark results are driven by three properties of the
input programs (§4.1–4.2): the *dynamic basic-block size*, the
*instruction mix* (integer codes hit the 2-wide integer issue limit;
floating-point codes have long, latency-rich blocks), and how well the
*compiler already scheduled* the code. The generator parameterizes
exactly those axes and is calibrated per benchmark to the ``Avg. BB
Size`` column of the paper's tables (see :mod:`repro.workloads.spec95`).

Programs are real SPARC V8 executables: sequential counted loops whose
bodies contain straight-line work and, for small-block integer codes,
parity if-diamonds. Block execution frequencies follow analytically from
trip counts and parity splits, and the functional simulator confirms
them exactly in the tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..eel.cfg import CFG
from ..eel.executable import DATA_BASE, Executable
from ..isa.instruction import Instruction
from ..isa.registers import Reg, f, r
from ..isa import synth
from .builder import ProgramBuilder

#: Integer work registers. %g6/%g7 are left for QPT, %i0/%i2 are the
#: data base and loop counter, %o6/%o7/%i6/%i7 have ABI roles.
INT_WORK = [r(i) for i in (1, 2, 3, 4, 5, 9, 10, 11, 12, 13, 16, 17, 18, 19, 20, 21)]
#: Even-numbered FP registers (double-precision pairs).
FP_WORK = [f(i) for i in range(0, 30, 2)]

DATA_REG = r(24)  # %i0 — base of the data section
COUNTER_REG = r(26)  # %i2 — loop counter
LINK_SAVE = r(23)  # %l7 — return-address save around helper calls
LINK_SAVE_SRC = r(15)  # %o7 — the link register itself

_DATA_WORDS = 512


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs for one synthetic benchmark."""

    name: str
    seed: int
    kind: str  # 'int' | 'fp'
    avg_block_size: float
    loops: int = 6
    trip_count: int = 64
    #: probability a loop body is broken up by a parity if-diamond.
    diamond_prob: float = 0.8
    #: probability a loop body calls a small leaf helper routine. Calls
    #: split blocks at the return point, which is where QPT's
    #: redundant-counter rule fires.
    call_prob: float = 0.0
    #: probability an ALU/FP operand is the most recent definition.
    chain_density: float = 0.45
    load_fraction: float = 0.25
    store_fraction: float = 0.12
    #: for fp kind: fraction of body operations that are FP arithmetic.
    fp_fraction: float = 0.55

    def __post_init__(self) -> None:
        if self.kind not in ("int", "fp"):
            raise ValueError(f"kind must be 'int' or 'fp', not {self.kind!r}")


@dataclass
class SyntheticProgram:
    """A generated workload plus its analytic execution profile."""

    spec: WorkloadSpec
    executable: Executable
    cfg: CFG
    frequencies: dict[int, int]

    @property
    def total_block_executions(self) -> int:
        return sum(self.frequencies.values())

    @property
    def total_dynamic_instructions(self) -> int:
        return sum(
            self.frequencies[block.index] * block.instruction_count
            for block in self.cfg
        )

    @property
    def avg_dynamic_block_size(self) -> float:
        executions = self.total_block_executions
        if executions == 0:
            return 0.0
        return self.total_dynamic_instructions / executions


class _BodyGenerator:
    """Draws straight-line instruction sequences with a controlled mix."""

    def __init__(self, spec: WorkloadSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self._last_int: Reg | None = None
        self._last_fp: Reg | None = None

    def _int_operand(self) -> Reg:
        if self._last_int is not None and self.rng.random() < self.spec.chain_density:
            return self._last_int
        return self.rng.choice(INT_WORK)

    def _fp_operand(self) -> Reg:
        if self._last_fp is not None and self.rng.random() < self.spec.chain_density:
            return self._last_fp
        return self.rng.choice(FP_WORK)

    def _word_offset(self) -> int:
        return 4 * self.rng.randrange(_DATA_WORDS)

    def _dword_offset(self) -> int:
        return 8 * self.rng.randrange(_DATA_WORDS // 2)

    # Stores stay in the lower half of the data section; the upper half
    # is read-only so the branch-direction bytes tested by diamonds are
    # never overwritten at run time.
    def _store_word_offset(self) -> int:
        return 4 * self.rng.randrange(_DATA_WORDS // 2)

    def _store_dword_offset(self) -> int:
        return 8 * self.rng.randrange(_DATA_WORDS // 4)

    def instructions(self, count: int) -> list[Instruction]:
        return [self._one() for _ in range(count)]

    def _one(self) -> Instruction:
        rng = self.rng
        spec = self.spec
        roll = rng.random()
        if spec.kind == "fp" and roll < spec.fp_fraction:
            return self._fp_op()
        roll = rng.random()
        if roll < spec.load_fraction:
            return self._load()
        if roll < spec.load_fraction + spec.store_fraction:
            return self._store()
        return self._alu()

    def _load(self) -> Instruction:
        if self.spec.kind == "fp" and self.rng.random() < 0.7:
            rd = self.rng.choice(FP_WORK)
            self._last_fp = rd
            return Instruction("lddf", rd=rd, rs1=DATA_REG, imm=self._dword_offset())
        rd = self.rng.choice(INT_WORK)
        self._last_int = rd
        return Instruction("ld", rd=rd, rs1=DATA_REG, imm=self._word_offset())

    def _store(self) -> Instruction:
        if self.spec.kind == "fp" and self.rng.random() < 0.7:
            return Instruction(
                "stdf",
                rd=self._fp_operand(),
                rs1=DATA_REG,
                imm=self._store_dword_offset(),
            )
        return Instruction(
            "st", rd=self._int_operand(), rs1=DATA_REG, imm=self._store_word_offset()
        )

    def _alu(self) -> Instruction:
        mnemonic = self.rng.choice(
            ["add", "add", "sub", "and", "or", "xor", "sll", "srl", "sra"]
        )
        rd = self.rng.choice(INT_WORK)
        rs1 = self._int_operand()
        self._last_int = rd
        if self.rng.random() < 0.45:
            imm = self.rng.randrange(0, 32 if mnemonic in ("sll", "srl", "sra") else 1024)
            return Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm)
        return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=self._int_operand())

    def _fp_op(self) -> Instruction:
        roll = self.rng.random()
        rd = self.rng.choice(FP_WORK)
        a, b = self._fp_operand(), self._fp_operand()
        self._last_fp = rd
        if roll < 0.45:
            return Instruction("faddd", rd=rd, rs1=a, rs2=b)
        if roll < 0.82:
            return Instruction("fmuld", rd=rd, rs1=a, rs2=b)
        if roll < 0.97:
            return Instruction("fsubd", rd=rd, rs1=a, rs2=b)
        if roll < 0.995:
            return Instruction("fdtos", rd=self.rng.choice(FP_WORK), rs2=a)
        return Instruction("fdivd", rd=rd, rs1=a, rs2=b)


def _parity_split(trip_count: int, mask: int) -> tuple[int, int]:
    """(untaken, taken) counts for ``andcc counter, mask; be …`` over
    counter values trip_count..1."""
    taken = sum(1 for i in range(1, trip_count + 1) if (i & mask) == 0)
    return trip_count - taken, taken


def _draw_size(rng: random.Random, mu: float) -> int:
    if mu <= 0:
        return 0
    return max(0, round(rng.gauss(mu, 0.4 * mu)))


def generate(spec: WorkloadSpec) -> SyntheticProgram:
    """Generate a workload, calibrating body sizes so the dynamic
    average block size lands near ``spec.avg_block_size``."""
    mu = max(0.0, spec.avg_block_size - 3.0)
    program = _generate_once(spec, mu)
    for _ in range(8):
        actual = program.avg_dynamic_block_size
        target = spec.avg_block_size
        if abs(actual - target) <= 0.10 * target:
            break
        # Body sizes move the average roughly linearly.
        mu = max(0.0, mu + (target - actual))
        program = _generate_once(spec, mu)
    return program


def _generate_once(spec: WorkloadSpec, mu: float) -> SyntheticProgram:
    rng = random.Random(spec.seed)
    data = bytes(rng.randrange(256) for _ in range(4 * _DATA_WORDS))
    bodies = _BodyGenerator(spec, rng)
    builder = ProgramBuilder()

    # Entry: establish the data base pointer.
    builder.emit_all(synth.set_constant(DATA_BASE, DATA_REG), freq=1)

    helper_calls: list[tuple[int, int]] = []  # (helper id, call frequency)
    for loop_index in range(spec.loops):
        trips = max(1, round(spec.trip_count * rng.uniform(0.5, 1.5)))
        if spec.call_prob > 0 and rng.random() < spec.call_prob:
            helper_calls.append((loop_index, trips))
            helper = f"helper{loop_index}"
        else:
            helper = None
        _emit_loop(builder, bodies, rng, spec, loop_index, trips, mu, data, helper)

    builder.emit(synth.retl(), freq=1)
    builder.emit(Instruction("nop", imm=0), freq=1)

    # Leaf helper routines, after the main code.
    for loop_index, freq in helper_calls:
        builder.label(f"helper{loop_index}")
        builder.emit_all(bodies.instructions(max(1, _draw_size(rng, mu))), freq=freq)
        builder.emit(synth.retl(), freq=freq)
        builder.emit(Instruction("nop", imm=0), freq=freq)

    executable, cfg, frequencies = builder.build(data=data, data_base=DATA_BASE)
    return SyntheticProgram(
        spec=spec, executable=executable, cfg=cfg, frequencies=frequencies
    )


def _emit_loop(
    builder: ProgramBuilder,
    bodies: _BodyGenerator,
    rng: random.Random,
    spec: WorkloadSpec,
    loop_index: int,
    trips: int,
    mu: float,
    data: bytes,
    helper: str | None = None,
) -> None:
    head = f"loop{loop_index}"
    builder.emit_all(synth.set_constant(trips, COUNTER_REG), freq=1)
    builder.label(head)

    # Tiny-block benchmarks (li, gcc, vortex at ~2 instructions/block)
    # are branch-dense: chain two diamonds per iteration.
    diamonds = 2 if (spec.kind == "int" and spec.avg_block_size <= 2.4) else 1
    for k in range(diamonds):
        if rng.random() < spec.diamond_prob:
            _emit_diamond(
                builder, bodies, rng, spec, f"{loop_index}_{k}", trips, mu, data
            )

    if helper is not None:
        # Leaf call: save/restore the return address in %l7 (reserved —
        # the body generator never allocates it).
        builder.emit(synth.mov(LINK_SAVE_SRC, LINK_SAVE), freq=trips)
        builder.emit(Instruction("call", target=helper), freq=trips)
        builder.emit(Instruction("nop", imm=0), freq=trips)
        builder.emit(synth.mov(LINK_SAVE, LINK_SAVE_SRC), freq=trips)

    # Tail body + loop control (subcc / bne / delay nop).
    builder.emit_all(bodies.instructions(_draw_size(rng, mu)), freq=trips)
    builder.emit(
        Instruction("subcc", rd=COUNTER_REG, rs1=COUNTER_REG, imm=1), freq=trips
    )
    builder.emit(Instruction("bne", target=head), freq=trips)
    builder.emit(Instruction("nop", imm=0), freq=trips)


def _emit_diamond(
    builder: ProgramBuilder,
    bodies: _BodyGenerator,
    rng: random.Random,
    spec: WorkloadSpec,
    tag: str,
    trips: int,
    mu: float,
    data: bytes,
) -> None:
    else_label = f"else{tag}"
    join_label = f"join{tag}"

    # Header: optional work, then the test ending the block. Integer
    # codes mostly branch on loaded data (the load -> compare -> branch
    # chain that dominates SPECINT); parity tests on the loop counter
    # supply dynamic two-way splits. Very-small-block calibration
    # (li/gcc-sized) needs the lighter parity form more often: the
    # ldub+subcc pair adds two instructions per header.
    builder.emit_all(bodies.instructions(_draw_size(rng, mu)), freq=trips)
    data_dep_prob = 0.6 if mu >= 0.75 else 0.35
    data_dependent = spec.kind == "int" and rng.random() < data_dep_prob
    if data_dependent:
        offset = rng.randrange(len(data) // 2, len(data))
        value = data[offset]
        taken = rng.random() < 0.5  # generator chooses the direction
        test_reg = rng.choice(INT_WORK)
        constant = value if taken else (value + 1) & 0xFF
        builder.emit(
            Instruction("ldub", rd=test_reg, rs1=DATA_REG, imm=offset), freq=trips
        )
        builder.emit(
            Instruction("subcc", rd=r(0), rs1=test_reg, imm=constant), freq=trips
        )
        then_freq, else_freq = (0, trips) if taken else (trips, 0)
    else:
        mask = rng.choice([1, 1, 2, 3])
        then_freq, else_freq = _parity_split(trips, mask)
        builder.emit(
            Instruction("andcc", rd=r(0), rs1=COUNTER_REG, imm=mask), freq=trips
        )
    else_size = _draw_size(rng, mu) if mu >= 0.5 else rng.choice([0, 1])
    target = join_label if else_size == 0 else else_label
    builder.emit(Instruction("be", target=target), freq=trips)
    builder.emit(Instruction("nop", imm=0), freq=trips)

    # Then arm.
    builder.emit_all(bodies.instructions(_draw_size(rng, mu)), freq=then_freq)
    builder.emit(Instruction("ba", target=join_label), freq=then_freq)
    builder.emit(Instruction("nop", imm=0), freq=then_freq)

    # Else arm (possibly empty: the branch then targets the join
    # directly — an if-then rather than if-then-else).
    if else_size > 0:
        builder.label(else_label)
        builder.emit_all(bodies.instructions(else_size), freq=else_freq)
    builder.label(join_label)
