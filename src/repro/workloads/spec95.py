"""SPEC95 benchmark calibration — one entry per row of the paper's tables.

Each benchmark is a :class:`~repro.workloads.generator.WorkloadSpec`
whose dynamic basic-block size is calibrated to the ``Avg. BB Size``
column the paper reports (Table 1/2 sizes for the UltraSPARC runs,
Table 3 sizes for the SuperSPARC runs — the paper's two compilations
differ slightly). Integer benchmarks get small diamond-broken blocks;
floating-point benchmarks get long straight-line loop bodies dominated
by double-precision arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .generator import SyntheticProgram, WorkloadSpec, generate

CINT95 = (
    "099.go",
    "124.m88ksim",
    "126.gcc",
    "129.compress",
    "130.li",
    "132.ijpeg",
    "134.perl",
    "147.vortex",
)

CFP95 = (
    "101.tomcatv",
    "102.swim",
    "103.su2cor",
    "104.hydro2d",
    "107.mgrid",
    "110.applu",
    "125.turb3d",
    "141.apsi",
    "145.fpppp",
    "146.wave5",
)

#: name -> (avg bb size on UltraSPARC [Tables 1/2],
#:          avg bb size on SuperSPARC [Table 3])
_BLOCK_SIZES: dict[str, tuple[float, float]] = {
    "099.go": (2.9, 2.8),
    "124.m88ksim": (2.2, 2.3),
    "126.gcc": (2.2, 2.2),
    "129.compress": (3.0, 3.0),
    "130.li": (2.0, 2.0),
    "132.ijpeg": (6.2, 6.4),
    "134.perl": (2.4, 2.3),
    "147.vortex": (2.1, 2.1),
    "101.tomcatv": (13.8, 11.4),
    "102.swim": (49.0, 66.1),
    "103.su2cor": (10.2, 10.1),
    "104.hydro2d": (4.7, 4.4),
    "107.mgrid": (32.4, 46.9),
    "110.applu": (12.5, 9.3),
    "125.turb3d": (6.1, 5.7),
    "141.apsi": (10.4, 11.8),
    "145.fpppp": (33.9, 28.2),
    "146.wave5": (10.9, 13.3),
}

#: Paper Avg. BB Size columns, re-exported for assertions and reports.
PAPER_BLOCK_SIZES_ULTRA = {k: v[0] for k, v in _BLOCK_SIZES.items()}
PAPER_BLOCK_SIZES_SUPER = {k: v[1] for k, v in _BLOCK_SIZES.items()}


def is_fp(benchmark: str) -> bool:
    if benchmark in CFP95:
        return True
    if benchmark in CINT95:
        return False
    raise KeyError(f"unknown SPEC95 benchmark {benchmark!r}")


def benchmark_spec(
    benchmark: str, *, machine: str = "ultrasparc", trip_count: int = 64
) -> WorkloadSpec:
    """The calibrated workload spec for one SPEC95 benchmark."""
    ultra_size, super_size = _BLOCK_SIZES[benchmark]
    size = super_size if machine == "supersparc" else ultra_size
    fp = is_fp(benchmark)
    seed = abs(hash_name(benchmark)) % (2**31)
    if fp:
        return WorkloadSpec(
            name=benchmark,
            seed=seed,
            kind="fp",
            avg_block_size=size,
            loops=6,
            trip_count=trip_count,
            diamond_prob=0.25 if size < 8 else 0.0,
            # Software-pipelined FP loops expose plenty of ILP; the
            # load/store port, not the dependence chains, bounds them.
            chain_density=0.10,
            # FP inner loops stream arrays: ~40% of operations touch
            # memory, which is what bounds how much instrumentation the
            # single load/store port lets the scheduler hide (§4.1).
            load_fraction=0.65,
            store_fraction=0.25,
            fp_fraction=0.42,
            call_prob=0.15,
        )
    # Integer codes are dependence-bound: compilers find ~1 IPC on these
    # machines, dominated by load-use chains and short tests.
    return WorkloadSpec(
        name=benchmark,
        seed=seed,
        kind="int",
        avg_block_size=size,
        loops=6,
        trip_count=trip_count,
        diamond_prob=0.9 if size < 4 else 0.4,
        chain_density=0.55,
        load_fraction=0.32,
        store_fraction=0.12,
        call_prob=0.4,
    )


def hash_name(name: str) -> int:
    """A stable (non-randomized) string hash for seeding."""
    value = 5381
    for ch in name:
        value = ((value * 33) + ord(ch)) & 0x7FFFFFFF
    return value


def generate_benchmark(
    benchmark: str, *, machine: str = "ultrasparc", trip_count: int = 64
) -> SyntheticProgram:
    """Generate the calibrated synthetic stand-in for one benchmark."""
    return generate(benchmark_spec(benchmark, machine=machine, trip_count=trip_count))


def all_benchmarks() -> tuple[str, ...]:
    return CINT95 + CFP95
