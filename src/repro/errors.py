"""The unified error taxonomy — every layer fails typed.

The paper's motivation for SADL/Spawn was that hand-written instruction
manipulation code "hid subtle bugs for months"; the first line of
defence against that class of bug is that nothing in this library fails
with a bare ``Exception`` (or, worse, a silently wrong result).
:class:`ReproError` is the base every layer's error type derives from:

* :class:`~repro.isa.decode.DecodeError`, ``EncodeError``, ``AsmError``,
  ``MemoryFault`` — the ISA substrate;
* :class:`~repro.isa.semantics.SemanticsError` — functional execution;
* :class:`~repro.sadl.errors.SadlError` — description parsing/evaluation;
* :class:`~repro.spawn.model.ModelError` — machine-model resolution;
* :class:`~repro.eel.editor.EditError`, ``CfgError``, ``SnippetError``
  — executable editing;
* ``BuildError``, ``FastProfileError`` — workloads and fast profiling;
* :class:`VerificationError` and :class:`BudgetExceeded` — the guarded
  scheduling layer (:mod:`repro.robust`);
* :class:`ParallelError` — the parallel executor's configuration
  failures (e.g. an unpicklable payload); runtime worker faults are
  contained by supervision instead (:mod:`repro.robust.supervise`).

Callers that want "anything this library can legitimately raise" catch
``ReproError``; the CLI does exactly that at top level and turns it into
``error: ...`` on stderr plus a nonzero exit. This module is zero-
dependency (it imports nothing from the rest of ``repro``) so every
layer may depend on it without cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every typed error the library raises."""


class VerificationError(ReproError):
    """A scheduled region failed post-schedule verification.

    Raised only in *strict* guarded scheduling; in safe mode the guard
    falls back to the original order and records a quarantine report
    instead. ``failures`` carries the verifier's individual findings.
    """

    def __init__(self, message: str, failures: tuple[str, ...] = (), block: int | None = None) -> None:
        super().__init__(message)
        self.failures = tuple(failures)
        self.block = block


class AnalysisError(ReproError):
    """The static analyzer itself failed (not: the analyzed input is bad).

    Raised for unknown rule ids, rule crashes, and malformed analysis
    inputs. Findings about the *subject* of the analysis are returned as
    :class:`repro.analyze.Finding` values, never raised.
    """


class BudgetExceeded(ReproError):
    """A guard budget (instruction count or wall-clock deadline) ran out.

    Raised only in strict mode; safe mode degrades gracefully to the
    unscheduled instruction order.
    """

    def __init__(self, message: str, budget: str = "", block: int | None = None) -> None:
        super().__init__(message)
        self.budget = budget
        self.block = block


class ParallelError(ReproError):
    """The parallel executor cannot run at all — a configuration error,
    not a runtime fault.

    Runtime faults (a crashed or hung worker, a corrupt IPC result) are
    *contained*: the supervisor retries, bisects, and ultimately
    degrades to the serial path with the output bytes unchanged. This
    error is reserved for conditions retrying cannot fix — most
    importantly a payload that cannot be pickled for shipment to worker
    processes — so the caller gets a diagnostic instead of a pickle
    traceback or a silent serial fallback hiding a bug.
    """


__all__ = [
    "AnalysisError",
    "BudgetExceeded",
    "ParallelError",
    "ReproError",
    "VerificationError",
]
