"""Pipeline state: what previously issued instructions left behind.

The paper's ``pipeline_stalls`` (Appendix A) consults two kinds of
history: how many copies of each unit are free in each future cycle
(``UnitValues`` in the C++), and for every architectural register the
cycle its last value becomes usable (``write_cy``) and the last cycle it
was read. :class:`PipelineState` keeps both on an absolute-cycle
timeline that grows lazily as instructions are committed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.registers import Reg
from ..spawn.model import MachineModel


@dataclass(frozen=True)
class HeldInterval:
    """``count`` copies of ``unit`` held from ``start`` up to (but not
    including) ``end`` — absolute cycles."""

    unit: str
    count: int
    start: int
    end: int


class PipelineState:
    """Absolute-cycle occupancy and register history for one in-order
    instruction stream.

    When the model carries compiled transition tables
    (:mod:`repro.pipeline.tables`), the state additionally tracks which
    table state its structural occupancy corresponds to (``sid``,
    relative to absolute cycle ``origin``). The occupancy timeline and
    register history are maintained identically either way — the tables
    only replace the stall *search*, never the committed state — so
    attribution, visualization, and diagnosis read the same data in
    both modes.
    """

    def __init__(self, model: MachineModel, *, use_tables: bool = True) -> None:
        self.model = model
        self._capacity = list(model.unit_capacity)
        self._unit_index = model.unit_index
        #: free units per absolute cycle; grown on demand.
        self._free: list[list[int]] = []
        #: register -> first absolute cycle its latest value is usable.
        self.write_cy: dict[Reg, int] = {}
        #: register -> last absolute cycle it was read.
        self.read_cy: dict[Reg, int] = {}
        #: compiled transition tables, when attached to the model.
        self.tables = getattr(model, "tables", None) if use_tables else None
        #: table state id of the occupancy at/after ``origin`` (None
        #: once tracking is lost, e.g. past the enumeration budget).
        self.sid: int | None = 0 if self.tables is not None else None
        #: absolute cycle ``sid`` is relative to.
        self.origin = 0

    # -- unit timeline -------------------------------------------------------

    def _row(self, cycle: int) -> list[int]:
        while len(self._free) <= cycle:
            self._free.append(list(self._capacity))
        return self._free[cycle]

    def free_units(self, cycle: int, unit_index: int) -> int:
        if cycle < len(self._free):
            return self._free[cycle][unit_index]
        return self._capacity[unit_index]

    def unit_free_by_name(self, cycle: int, unit: str) -> int:
        return self.free_units(cycle, self._unit_index[unit])

    def commit_interval(self, interval: HeldInterval) -> None:
        """Mark ``interval`` as occupied on the timeline."""
        index = self._unit_index[interval.unit]
        for cycle in range(interval.start, interval.end):
            row = self._row(cycle)
            row[index] -= interval.count
            if row[index] < 0:
                raise RuntimeError(
                    f"over-committed unit {interval.unit!r} at cycle {cycle}"
                )

    # -- register history -----------------------------------------------------

    def commit_read(self, reg: Reg, cycle: int) -> None:
        previous = self.read_cy.get(reg, -1)
        if cycle > previous:
            self.read_cy[reg] = cycle

    def commit_write(self, reg: Reg, avail_cycle: int) -> None:
        self.write_cy[reg] = avail_cycle

    def value_ready(self, reg: Reg) -> int:
        """First absolute cycle the register's current value is usable
        (0 when never written in this stream)."""
        return self.write_cy.get(reg, 0)

    def last_read(self, reg: Reg) -> int:
        return self.read_cy.get(reg, -1)
