"""Straight-line and block timing on top of ``pipeline_stalls``.

The scheduler asks one question — "how many cycles does this sequence of
instructions take to issue?" — and the evaluation harness asks it for
every basic block in a program. Both use :class:`BlockSimulator`.

Block cost is measured as *issue time*: the cycle after the last
instruction of the block enters the pipeline. This is the quantity local
scheduling actually changes (long-latency tails drain concurrently with
the next block on these in-order machines, and neither the paper's model
nor ours tracks cache or fetch effects — §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Instruction
from ..obs.recorder import NULL_RECORDER, Recorder
from ..spawn.model import MachineModel
from .stalls import issue, pipeline_stalls, walk
from .state import PipelineState


@dataclass
class BlockTiming:
    """Timing of one straight-line instruction sequence."""

    instructions: int
    #: cycle after the last instruction issued (the block's issue cost).
    issue_cycles: int
    #: cycle after the last instruction left the pipeline entirely.
    drain_cycles: int
    #: total stall cycles summed over instructions.
    stall_cycles: int
    #: issue cycle per instruction, in sequence order.
    issue_times: list[int] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Issued instructions per cycle."""
        if self.issue_cycles == 0:
            return 0.0
        return self.instructions / self.issue_cycles


class BlockSimulator:
    """Times straight-line code on a machine model, in order."""

    def __init__(
        self, model: MachineModel, recorder: Recorder | None = None
    ) -> None:
        self.model = model
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    def time_block(self, instructions: list[Instruction]) -> BlockTiming:
        """Issue ``instructions`` in order through a fresh pipeline."""
        state = PipelineState(self.model)
        cycle = 0
        stall_total = 0
        drain = 0
        issue_times: list[int] = []
        for inst in instructions:
            result = issue(cycle, state, inst, self.recorder)
            stall_total += result.stalls
            cycle = result.issue_cycle
            drain = max(drain, result.completion_cycle)
            issue_times.append(result.issue_cycle)
        last_issue = issue_times[-1] if issue_times else -1
        return BlockTiming(
            instructions=len(instructions),
            issue_cycles=last_issue + 1,
            drain_cycles=drain,
            stall_cycles=stall_total,
            issue_times=issue_times,
        )

    def block_cycles(self, instructions: list[Instruction]) -> int:
        """Shorthand: the issue-cycle cost of a block."""
        return self.time_block(instructions).issue_cycles

    def next_stalls(
        self, state: PipelineState, cycle: int, inst: Instruction
    ) -> int:
        """The scheduler's priority metric: stalls before ``inst`` could
        start executing, given the pipeline state so far."""
        return pipeline_stalls(cycle, state, inst)
