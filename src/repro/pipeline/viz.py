"""Pipeline occupancy visualization.

Renders a block's schedule as a text Gantt chart — one row per
instruction showing its issue cycle, one row per unit showing occupancy
over time. This is the picture the paper's §3.2 walkthroughs describe in
prose; the examples use it to show *where* instrumentation went.
"""

from __future__ import annotations

from ..isa.instruction import Instruction
from ..spawn.model import MachineModel
from .stalls import issue
from .state import PipelineState


def schedule_chart(
    model: MachineModel,
    instructions: list[Instruction],
    *,
    mark_instrumentation: bool = True,
    max_width: int = 72,
) -> str:
    """Issue ``instructions`` in order and render the result.

    Instrumentation instructions are marked ``+`` in the gutter, original
    ones `` ``; each row shows the cycles the instruction occupies the
    pipeline, with ``I`` at the issue cycle and ``-`` for the rest.
    """
    state = PipelineState(model)
    rows = []
    cycle = 0
    horizon = 0
    for inst in instructions:
        result = issue(cycle, state, inst)
        cycle = result.issue_cycle
        rows.append((inst, result.issue_cycle, result.completion_cycle))
        horizon = max(horizon, result.completion_cycle)

    horizon = min(horizon, max_width)
    text_width = max((len(str(inst)) for inst, _, _ in rows), default=0)
    text_width = min(text_width, 32)

    lines = [
        " " * (text_width + 4)
        + "".join(str(c % 10) for c in range(horizon))
    ]
    for inst, start, end in rows:
        gutter = "+" if (mark_instrumentation and inst.is_instrumentation) else " "
        text = str(inst)[:text_width].ljust(text_width)
        lane = [" "] * horizon
        for c in range(start, min(end, horizon)):
            lane[c] = "-"
        if start < horizon:
            lane[start] = "I"
        lines.append(f"{gutter} {text}  {''.join(lane)}")
    lines.append(f"\ntotal: {cycle + 1} issue cycles for {len(rows)} instructions")
    return "\n".join(lines)


def unit_occupancy(
    model: MachineModel, instructions: list[Instruction], *, max_cycles: int = 64
) -> str:
    """Per-unit busy/free occupancy table for a block."""
    state = PipelineState(model)
    cycle = 0
    for inst in instructions:
        cycle = issue(cycle, state, inst).issue_cycle
    horizon = min(cycle + 4, max_cycles)
    names = sorted(model.units)
    width = max(len(n) for n in names)
    lines = [
        " " * (width + 2) + "".join(str(c % 10) for c in range(horizon))
    ]
    for name in names:
        index = model.unit_index[name]
        capacity = model.units[name]
        row = []
        for c in range(horizon):
            free = state.free_units(c, index)
            used = capacity - free
            row.append(str(used) if used else ".")
        lines.append(f"{name.ljust(width)}  {''.join(row)}")
    return "\n".join(lines)
