"""Trace-driven whole-program timing.

The functional simulator executes the program and feeds every
dynamically executed instruction, in true dynamic order, into the
pipeline model. This carries pipeline state *across* basic blocks — a
load at the end of one block stalls its use at the top of the next, and
back-to-back tiny blocks contend for the branch unit — which is
essential for the paper's small-block SPECINT behaviour.

This is the "Time" measurement of the evaluation harness: the paper ran
wall-clock on hardware; we run the same binaries through an in-order
pipeline simulation of the same microarchitectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.simulator import RunResult
from ..obs.recorder import NULL_RECORDER, Recorder
from ..spawn.model import MachineModel
from .stalls import issue
from .state import PipelineState


@dataclass
class TimedRun:
    """Outcome of a trace-driven timing run."""

    cycles: int
    instructions: int
    result: RunResult

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def timed_run(
    model: MachineModel,
    executable,
    *,
    max_instructions: int = 5_000_000,
    count_executions: bool = False,
    recorder: Recorder | None = None,
) -> TimedRun:
    """Run ``executable`` functionally while timing it on ``model``."""
    rec = recorder if recorder is not None else NULL_RECORDER
    state = PipelineState(model)
    last_issue = -1

    def hook(address: int, inst) -> None:
        nonlocal last_issue
        last_issue = issue(max(last_issue, 0), state, inst, rec).issue_cycle

    with rec.span("pipeline.timed_run"):
        result = executable.run(
            max_instructions=max_instructions,
            count_executions=count_executions,
            on_execute=hook,
        )
    return TimedRun(
        cycles=last_issue + 1,
        instructions=result.instructions_executed,
        result=result,
    )
