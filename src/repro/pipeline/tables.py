"""Compiled stall-transition tables: the interpreted walker as data.

``pipeline_stalls`` is the inner loop of every scheduling decision and
is re-evaluated per candidate per cycle. Spawn already collapses
instructions with identical resource traces into timing groups
(:class:`~repro.spawn.model.MachineModel`); this module pushes that to
its conclusion: it enumerates the *structural* pipeline states a
machine can reach and compiles a transition table

    ``(state-id, timing-group) -> (fit offset, next-state-id)``

so the scheduler's hot path becomes dictionary lookups with no interval
arithmetic.

Why the table only needs the structural dimension
-------------------------------------------------
Every register hazard in :func:`repro.pipeline.stalls._fits` is a
monotone lower bound on the start cycle: ``RAW`` requires
``start >= write_cy[reg] - rel``, ``WAW`` requires
``start >= write_cy[reg] - rel``, and ``WAR`` requires
``start >= last_read[reg] + 1 - rel``. A check that passes at ``s``
therefore passes at every later cycle, so the earliest legal issue is
the first *structural* fit at or after the register lower bound — and
structural occupancy is a pure function of (current state, timing
group). Register history stays in the per-stream dictionaries exactly
as in the interpreted walker.

State encoding and bounds
-------------------------
A state is the tuple of per-cycle free-unit rows relative to the
current cycle, trimmed of trailing idle rows. No trace event occurs
more than ``window - 1`` cycles after issue (``window`` = the largest
group's ``max_event_cycle + 1``), so occupancy never extends more than
``window`` cycles past the last issue and every state has at most
``window`` rows — the "issue width × max latency × unit counts" bound.
The *reachable* subset of that space is still far too large to
enumerate eagerly on real machines (the shipped SPARC models blow
through 100k states while a breadth-first frontier is still growing),
so the compiler is demand-driven: a small deterministic breadth-first
prefix is compiled at attach time (and persisted under the model's
content digest so parallel workers and later processes reuse it), and
every state actually visited during scheduling is interned and its
transitions memoized on first use. Once ``budget`` distinct states have
been interned, new states stop being recorded and queries from unknown
states fall back to the interpreted walker (counted as
``pipeline.table_fallbacks``); tracking resumes for free once the
pipeline drains.

Transitions are *computed by the interpreted walker itself* — a scratch
:class:`~repro.pipeline.state.PipelineState` is loaded with the state's
rows and searched with the group's trace — so table and interpreter
agree by construction; the differential battery in
``tests/pipeline/test_table_differential.py`` enforces it end to end.
"""

from __future__ import annotations

import json
import os
import tempfile

from ..isa.registers import reg_code
from ..spawn.model import InstructionTiming, MachineModel
from .state import PipelineState

#: Default cap on distinct interned states per model. Real workloads
#: visit far fewer (hundreds to a few thousand); the cap bounds memory
#: on adversarial inputs.
DEFAULT_BUDGET = 50_000

#: Default number of states pre-enumerated breadth-first at attach
#: time. This prefix is deterministic, so it is what the on-disk cache
#: stores and what every worker process starts from.
DEFAULT_EAGER_STATES = 256

#: On-disk cache format version (bump on any layout change).
_CACHE_VERSION = 1

#: Environment override for the on-disk table cache directory.
CACHE_DIR_ENV = "REPRO_TABLE_CACHE_DIR"


def _default_cache_dir() -> str:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else "any"
    return os.path.join(tempfile.gettempdir(), f"repro-tables-{uid}")


class PipelineTables:
    """Interned structural states + memoized transitions for one model.

    ``keys[sid]`` is the canonical row tuple of state ``sid`` (state 0
    is the empty machine); ``transitions[sid][group]`` maps a timing
    group to ``(fit, next_sid)`` where ``fit`` is the offset of the
    earliest structural fit from the queried cycle and ``next_sid`` the
    state after committing there (None when the successor was past the
    budget — the stall answer is still valid, only tracking is lost).
    """

    def __init__(self, model: MachineModel, *, budget: int = DEFAULT_BUDGET) -> None:
        self.model = model
        self.budget = budget
        self.window = self._window(model)
        self.capacity = tuple(model.unit_capacity)
        self.keys: list[tuple] = [()]
        self.ids: dict[tuple, int] = {(): 0}
        self.advance: list[int | None] = [0]  # empty advances to itself
        self.transitions: list[dict[int, tuple[int, int | None]]] = [{}]
        #: True once an intern was refused because of the budget.
        self.exhausted = False
        #: group id -> prepared events for the group's bare trace.
        self._group_prepared: dict[int, object] = {}
        #: how many states the on-disk cache entry held when these
        #: tables were compiled/loaded (0 when no disk cache is in
        #: play); :func:`persist_learned` compares against it.
        self.persisted_states = 0
        #: where :func:`compile_tables` read/wrote the disk entry, so
        #: lazily learned states can be persisted back to the same file.
        self.cache_path: str | None = None

    @staticmethod
    def _window(model: MachineModel) -> int:
        spans = [
            model.group_trace(g).max_event_cycle + 1
            for g in range(model.group_count)
        ]
        return max(spans, default=1)

    @property
    def states(self) -> int:
        return len(self.keys)

    # -- interning -----------------------------------------------------------

    def _intern(self, key: tuple) -> int | None:
        sid = self.ids.get(key)
        if sid is not None:
            return sid
        if len(self.keys) >= self.budget:
            self.exhausted = True
            return None
        sid = len(self.keys)
        self.ids[key] = sid
        self.keys.append(key)
        self.advance.append(None)
        self.transitions.append({})
        return sid

    def intern_from_state(self, state: PipelineState, origin: int) -> int | None:
        """Intern the live occupancy of ``state`` at/after ``origin``."""
        free = state._free
        length = len(free)
        capacity = self.capacity
        rows = [
            tuple(free[c]) if c < length else capacity
            for c in range(origin, origin + self.window)
        ]
        while rows and rows[-1] == capacity:
            rows.pop()
        return self._intern(tuple(rows))

    def advance_to(self, sid: int, cycles: int) -> int | None:
        """The state ``cycles`` idle cycles after state ``sid``."""
        keys = self.keys
        advance = self.advance
        while cycles > 0:
            key = keys[sid]
            if not key:
                return sid  # empty stays empty
            if cycles >= len(key):
                return 0  # all occupancy expires
            nxt = advance[sid]
            if nxt is None:
                nxt = self._intern(key[1:])
                if nxt is None:
                    return None
                advance[sid] = nxt
            sid = nxt
            cycles -= 1
        return sid

    # -- transitions ---------------------------------------------------------

    def lookup(self, sid: int, group: int) -> tuple[int, int | None] | None:
        """The transition for issuing ``group`` from state ``sid``,
        learning (and memoizing) it on first use. None only when the
        group's trace does not fit the compiled window (cannot happen
        for groups known at attach time)."""
        transition = self.transitions[sid].get(group)
        if transition is None:
            transition = self._learn(sid, group)
            if transition is None:
                return None
            self.transitions[sid][group] = transition
        return transition

    def _learn(self, sid: int, group: int) -> tuple[int, int | None] | None:
        from .stalls import _prepare_uncached, _search

        trace = self.model.group_trace(group)
        if trace.max_event_cycle + 1 > self.window:
            # A timing group formed after the tables were compiled, with
            # a longer trace than the window bound: its successors would
            # violate the row-count invariant, so it stays interpreted.
            return None
        prepared = self._group_prepared.get(group)
        if prepared is None:
            bare = InstructionTiming(group=group, trace=trace, reads=(), writes=())
            prepared = _prepare_uncached(bare)
            self._group_prepared[group] = prepared
        scratch = PipelineState(self.model, use_tables=False)
        scratch._free = [list(row) for row in self.keys[sid]]
        fit = _search(0, scratch, prepared)
        from .stalls import _materialize

        for interval in _materialize(fit, 0, prepared).intervals:
            scratch.commit_interval(interval)
        next_sid = self.intern_from_state(scratch, fit)
        return fit, next_sid

    # -- eager enumeration ---------------------------------------------------

    def enumerate(self, max_states: int) -> None:
        """Breadth-first enumeration from the empty machine: intern up
        to ``max_states`` states and memoize every transition among
        them. Deterministic, so the result is safe to persist and share
        under the model's content digest."""
        limit = min(max_states, self.budget)
        groups = list(range(self.model.group_count))
        frontier = 0
        while frontier < len(self.keys) and len(self.keys) < limit:
            sid = frontier
            key = self.keys[sid]
            if key and self.advance[sid] is None:
                self.advance[sid] = self._intern(key[1:])
            for group in groups:
                if group not in self.transitions[sid]:
                    transition = self._learn(sid, group)
                    if transition is not None:
                        self.transitions[sid][group] = transition
                if len(self.keys) >= limit:
                    break
            frontier += 1
        # Enumeration stopping at `limit` is not budget exhaustion: the
        # lazy path may still intern states up to `budget`.
        self.exhausted = len(self.keys) >= self.budget

    # -- persistence ---------------------------------------------------------

    def _groups_fingerprint(self) -> str:
        """Order-sensitive digest of the group-id -> trace-signature
        assignment. Group ids are handed out in formation order, so a
        model that scheduled before the tables were attached can number
        the same signatures differently than a freshly built one; a
        persisted table is only valid under the exact assignment it was
        compiled with."""
        import hashlib

        signatures = [
            self.model.group_trace(g).signature()
            for g in range(self.model.group_count)
        ]
        return hashlib.sha256(repr(signatures).encode()).hexdigest()[:16]

    def payload(self) -> dict:
        """The JSON-serializable table content: every interned state and
        memoized transition, eager prefix and lazily learned alike.
        (The eager prefix is deterministic; learned states depend on
        what was scheduled, but every persisted transition was computed
        by the interpreted walker, so any superset is equally valid.)"""
        return {
            "version": _CACHE_VERSION,
            "window": self.window,
            "capacity": list(self.capacity),
            "groups": self.model.group_count,
            "groups_sig": self._groups_fingerprint(),
            "keys": [[list(row) for row in key] for key in self.keys],
            "advance": self.advance,
            "transitions": [
                sorted(
                    (group, fit, next_sid)
                    for group, (fit, next_sid) in table.items()
                )
                for table in self.transitions
            ],
        }

    def load_payload(self, payload: dict) -> bool:
        """Adopt a persisted prefix; False when it does not match this
        model (stale format, different group set or unit inventory)."""
        if (
            payload.get("version") != _CACHE_VERSION
            or payload.get("window") != self.window
            or tuple(payload.get("capacity", ())) != self.capacity
            or payload.get("groups") != self.model.group_count
            or payload.get("groups_sig") != self._groups_fingerprint()
        ):
            return False
        keys = [
            tuple(tuple(row) for row in key) for key in payload["keys"]
        ]
        if not keys or keys[0] != ():
            return False
        if len(keys) > self.budget:
            keys = keys[: self.budget]
        known = len(keys)
        self.keys = keys
        self.ids = {key: sid for sid, key in enumerate(keys)}
        self.advance = [
            sid if sid is not None and sid < known else None
            for sid in payload["advance"][:known]
        ]
        self.advance[0] = 0
        self.transitions = [
            {
                group: (fit, next_sid if (next_sid is None or next_sid < known) else None)
                for group, fit, next_sid in table
            }
            for table in payload["transitions"][:known]
        ]
        return True


class TableMiss(Exception):
    """A lean table walk hit a state the tables cannot serve; the
    caller must redo the work with the full interpreted machinery."""


def _lean_accesses(
    timing: InstructionTiming,
) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
    """The timing's register accesses with each :class:`Reg` replaced
    by a dense int code, memoized on the timing object. The coding is
    a bijection, so the lean history dictionaries partition streams
    exactly as the Reg-keyed ones do."""
    try:
        return timing._lean_reads, timing._lean_writes
    except AttributeError:
        reads = tuple((reg_code(reg), rel) for reg, rel in timing.reads)
        writes = tuple((reg_code(reg), rel) for reg, rel in timing.writes)
        object.__setattr__(timing, "_lean_reads", reads)
        object.__setattr__(timing, "_lean_writes", writes)
        return reads, writes


class LeanPipeline:
    """Table-only pipeline stream: state id + register history, no
    occupancy timeline, no interval arithmetic.

    This is the promise of the compiled tables made literal — an issue
    is a couple of dictionary lookups plus register-history updates.
    The trade is that there is no interpreted walker to fall back to
    mid-stream (the occupancy rows were never maintained), so the
    moment a query cannot be served from the tables
    (:class:`TableMiss`) the caller restarts the whole region on a full
    :class:`~repro.pipeline.state.PipelineState`. The register
    lower-bound logic mirrors
    :func:`repro.pipeline.stalls._table_query`, and the commit mirrors
    :func:`repro.pipeline.stalls.issue`'s history updates, so lean and
    full runs are byte-identical where both complete.
    """

    __slots__ = ("tables", "sid", "origin", "write_cy", "read_cy")

    def __init__(self, tables: PipelineTables) -> None:
        self.tables = tables
        self.sid = 0
        self.origin = 0
        #: reg code -> cycle its latest written value becomes usable.
        self.write_cy: dict = {}
        #: reg code -> latest cycle the reg was read.
        self.read_cy: dict = {}

    def query(self, cycle: int, timing: InstructionTiming) -> tuple[int, int | None]:
        """Earliest issue cycle >= ``cycle`` for ``timing``, plus the
        table state after committing there. Raises :class:`TableMiss`
        when the tables cannot answer."""
        reads, writes = _lean_accesses(timing)
        lb = cycle
        write_cy = self.write_cy
        read_cy = self.read_cy
        for code, rel in reads:  # RAW
            t = write_cy.get(code, 0) - rel
            if t > lb:
                lb = t
        for code, rel in writes:  # WAW / WAR
            t = write_cy.get(code, 0) - rel
            if t > lb:
                lb = t
            t = read_cy.get(code, -1) + 1 - rel
            if t > lb:
                lb = t
        sid = self.tables.advance_to(self.sid, lb - self.origin)
        if sid is None:
            raise TableMiss
        transition = self.tables.lookup(sid, timing.group)
        if transition is None:
            raise TableMiss
        fit, next_sid = transition
        return lb + fit, next_sid

    def commit(
        self, timing: InstructionTiming, issue_cycle: int, next_sid: int | None
    ) -> None:
        """Commit an issue previously answered by :meth:`query` at the
        same stream position."""
        if next_sid is None:
            raise TableMiss  # successor was past the interning budget
        self.sid = next_sid
        self.origin = issue_cycle
        reads, writes = _lean_accesses(timing)
        read_cy = self.read_cy
        write_cy = self.write_cy
        for code, rel in reads:
            cycle = issue_cycle + rel
            if cycle > read_cy.get(code, -1):
                read_cy[code] = cycle
        for code, rel in writes:
            write_cy[code] = issue_cycle + rel


def _cache_path(digest: str, directory: str) -> str:
    return os.path.join(directory, f"tables-{digest}-v{_CACHE_VERSION}.json")


def _expand_variants(model: MachineModel) -> None:
    """Form every timing group the ISA can produce, so the group set —
    and therefore the compiled table content — is complete and
    deterministic before enumeration."""
    from ..isa.opcodes import all_mnemonics

    for mnemonic in all_mnemonics():
        if not model.evaluator.has_sem(mnemonic):
            continue
        for uses_imm in (False, True):
            model._variant(mnemonic, uses_imm)


def compile_tables(
    model: MachineModel,
    *,
    budget: int = DEFAULT_BUDGET,
    eager_states: int = DEFAULT_EAGER_STATES,
    cache_dir: str | None = None,
    use_disk_cache: bool = True,
) -> PipelineTables:
    """Compile (or load from the content-addressed disk cache) the
    transition tables for ``model``, without attaching them.

    The eager prefix is persisted under the model's content digest
    (:func:`repro.parallel.fingerprint.model_digest`) when the model
    records its SADL source, so parallel workers and later processes
    skip recompilation.
    """
    from ..parallel.fingerprint import model_digest

    _expand_variants(model)
    tables = PipelineTables(model, budget=budget)
    path = None
    if use_disk_cache and model.source is not None:
        path = _cache_path(model_digest(model), cache_dir or _default_cache_dir())
    loaded = False
    if path is not None and os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = tables.load_payload(json.load(handle))
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            loaded = False
        if not loaded:  # corrupt or stale: recompile below
            tables = PipelineTables(model, budget=budget)
    if not loaded:
        tables.enumerate(eager_states)
        if path is not None:
            _atomic_write(path, tables.payload())
    if path is not None:
        tables.cache_path = path
        tables.persisted_states = tables.states
    return tables


def attach_tables(
    model: MachineModel,
    *,
    budget: int = DEFAULT_BUDGET,
    eager_states: int = DEFAULT_EAGER_STATES,
    cache_dir: str | None = None,
    use_disk_cache: bool = True,
) -> PipelineTables:
    """Compile (or load) transition tables and attach them to ``model``.

    Every :class:`~repro.pipeline.state.PipelineState` built for the
    model afterwards routes stall walks through the tables; schedules
    are byte-identical to the interpreted walker. Re-attaching replaces
    any previous tables. See :func:`compile_tables` for the caching
    behavior.
    """
    tables = compile_tables(
        model,
        budget=budget,
        eager_states=eager_states,
        cache_dir=cache_dir,
        use_disk_cache=use_disk_cache,
    )
    model.tables = tables
    return tables


def detach_tables(model: MachineModel) -> None:
    """Return ``model`` to the interpreted walker."""
    model.tables = None


#: Don't bother persisting fewer than this many newly learned states:
#: re-learning them costs less than a cache write is worth.
PERSIST_MIN_GROWTH = 64


def persist_learned(
    model: MachineModel, *, min_growth: int = PERSIST_MIN_GROWTH
) -> bool:
    """Write states learned lazily *during scheduling* back to the
    disk cache, so the next process to attach this model's tables
    starts with them instead of re-learning.

    The eager BFS prefix covers the structurally common states, but a
    real workload's first pass still interns on the order of a thousand
    additional states (`pipeline.table_fallbacks` territory) — work
    that was previously redone by every fresh worker process. Persisting
    is last-writer-wins with a size guard: if the on-disk entry already
    holds at least as many states (another worker got there first),
    nothing is written. Returns True when a write happened. No-ops
    when the model's tables did not come through the disk cache, and
    after a successful persist until another ``min_growth`` states are
    learned — steady state writes nothing.
    """
    tables = model.tables
    if tables is None or tables.cache_path is None:
        return False
    if tables.states - tables.persisted_states < min_growth:
        return False
    try:
        with open(tables.cache_path, "r", encoding="utf-8") as handle:
            on_disk = len(json.load(handle).get("keys", ()))
    except (OSError, ValueError, TypeError):
        on_disk = 0
    if on_disk >= tables.states:
        tables.persisted_states = tables.states
        return False
    _atomic_write(tables.cache_path, tables.payload())
    tables.persisted_states = tables.states
    return True


def _atomic_write(path: str, payload: dict) -> None:
    directory = os.path.dirname(path)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only or full cache directory only costs recompilation.
        pass
