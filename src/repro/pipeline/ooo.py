"""An out-of-order timing model — what the paper couldn't describe yet.

§3.2: "SADL does not yet describe out-of-order execution, since it was
not needed for the descriptions produced so far." Three decades later
the interesting question inverts: *does local instrumentation
scheduling still matter once the hardware reorders for you?* This module
answers it with a dataflow-limited OoO model layered on the same SADL
timing traces:

* instructions are fetched in order, ``fetch_width`` per cycle, into a
  reorder window of ``window`` entries;
* registers are renamed: WAR and WAW hazards vanish, only true (RAW)
  dependences delay execution, using the same read/available cycles the
  in-order model uses;
* functional units keep their capacities: an instruction occupies the
  units its trace acquires, for the same durations, starting when it
  begins executing;
* memory disambiguates perfectly except same-address (conservatively:
  any-store) ordering for stores — loads may bypass stores here because
  the evaluation's instrumentation counters and program data genuinely
  do not alias (matching the scheduler's §4 assumption).

The ``bench_ooo_extension`` bench runs the paper's experiment on this
model: the hardware hides almost all instrumentation overhead by
itself, leaving the static scheduler nothing to do — the quantitative
form of "scheduling to hide instrumentation is obsolete on out-of-order
processors".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..isa.instruction import Instruction
from ..isa.registers import Reg
from ..spawn.model import MachineModel


@dataclass
class OoOConfig:
    """Machine-independent OoO parameters (the SADL description still
    supplies unit capacities and latencies)."""

    window: int = 32
    fetch_width: int = 4
    #: retire bandwidth per cycle (bounds how fast the window drains).
    retire_width: int = 4


@dataclass
class OoORun:
    """``cycles`` counts through the last instruction's *start* (the
    same issue-granularity endpoint the in-order ``timed_run`` uses, so
    the two are directly comparable); ``drain_cycles`` counts until the
    last instruction fully completes."""

    cycles: int
    drain_cycles: int
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class _UnitPool:
    """Earliest-free tracking for one unit's ``capacity`` copies."""

    def __init__(self, capacity: int) -> None:
        self._free = [0] * capacity  # heap of free times

    def reserve(self, earliest: int, duration: int) -> int:
        """Claim one copy at or after ``earliest`` for ``duration``
        cycles; returns the start time."""
        slot_free = heapq.heappop(self._free)
        start = max(slot_free, earliest)
        heapq.heappush(self._free, start + max(duration, 1))
        return start


class OoOSimulator:
    """Dataflow-limited out-of-order timing over SADL machine models."""

    def __init__(self, model: MachineModel, config: OoOConfig | None = None) -> None:
        self.model = model
        self.config = config or OoOConfig()

    def time_sequence(self, instructions: list[Instruction]) -> OoORun:
        """Cycles to execute ``instructions`` (a dynamic sequence)."""
        config = self.config
        pools: dict[str, _UnitPool] = {
            unit: _UnitPool(capacity) for unit, capacity in self.model.units.items()
        }
        value_ready: dict[Reg, int] = {}
        completion: list[int] = []
        last_store_done = 0
        last_mem_done = 0
        final = 0
        final_start = -1

        for index, inst in enumerate(instructions):
            timing = self.model.timing(inst)
            trace = timing.trace

            fetch = index // config.fetch_width
            # Window: cannot dispatch until the instruction `window`
            # back has retired (bounded by retire bandwidth).
            if index >= config.window:
                fetch = max(fetch, completion[index - config.window])
            if index >= config.retire_width * config.window:
                # retire bandwidth bound (rarely binding in practice)
                fetch = max(fetch, index // config.retire_width - config.window)

            # True dependences: every read must wait for its producer.
            ready = fetch
            for reg, read_rel in timing.reads:
                ready = max(ready, value_ready.get(reg, 0) - read_rel)

            # Memory ordering: stores stay ordered after prior memory
            # ops in the same alias class; loads only wait for stores.
            if inst.memory == "store":
                ready = max(ready, last_mem_done)
            elif inst.memory == "load":
                ready = max(ready, last_store_done)

            # Structural: reserve every unit the trace acquires, at its
            # relative cycle, for its held duration.
            start = ready
            for event in trace.acquires:
                duration = _hold_duration(trace, event)
                got = pools[event.unit].reserve(start + event.cycle, duration)
                start = max(start, got - event.cycle)

            done = start + trace.cycles
            completion.append(done)
            final = max(final, done)
            final_start = max(final_start, start)
            for reg, avail_rel in timing.writes:
                value_ready[reg] = start + avail_rel
            # Memory ordering at access granularity: the access happens
            # one cycle into execution (the LSU stage), not at retire.
            access = start + 1
            if inst.memory == "store":
                last_store_done = max(last_store_done, access)
                last_mem_done = max(last_mem_done, access)
            elif inst.memory == "load":
                last_mem_done = max(last_mem_done, access)

        return OoORun(
            cycles=final_start + 1,
            drain_cycles=final,
            instructions=len(instructions),
        )


def _hold_duration(trace, acquire_event) -> int:
    """How long an acquire holds its unit: until the matching release,
    or the end of the trace."""
    for release in trace.releases:
        if release.unit == acquire_event.unit and release.cycle > acquire_event.cycle:
            return release.cycle - acquire_event.cycle
    return max(1, trace.cycles - acquire_event.cycle)


def ooo_timed_run(
    model: MachineModel,
    executable,
    *,
    config: OoOConfig | None = None,
    max_instructions: int = 5_000_000,
) -> OoORun:
    """Execute ``executable`` functionally and time its dynamic
    instruction stream on the OoO model."""
    stream: list[Instruction] = []
    executable.run(
        max_instructions=max_instructions,
        on_execute=lambda address, inst: stream.append(inst),
    )
    return OoOSimulator(model, config).time_sequence(stream)
