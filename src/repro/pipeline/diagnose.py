"""Stall diagnosis: *why* can't this instruction issue yet?

``pipeline_stalls`` answers "how long"; tools and humans also ask
"why". :func:`explain_stall` re-runs the hazard checks for one candidate
start cycle and reports the first failing condition — a structural
hazard on a named unit, or a RAW/WAW/WAR hazard on a named register —
so schedules can be debugged and the examples can annotate their
charts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Instruction
from ..isa.registers import Reg
from .stalls import _prepare
from .state import PipelineState


@dataclass(frozen=True)
class Hazard:
    """One reason an instruction cannot start at a given cycle."""

    kind: str  # 'structural' | 'raw' | 'waw' | 'war'
    cycle: int  # absolute cycle of the failing check
    unit: str | None = None
    register: Reg | None = None

    def __str__(self) -> str:
        if self.kind == "structural":
            return f"structural hazard on {self.unit} at cycle {self.cycle}"
        return f"{self.kind.upper()} hazard on {self.register} at cycle {self.cycle}"


def explain_stall(
    cycle: int, state: PipelineState, inst: Instruction
) -> Hazard | None:
    """The first hazard preventing ``inst`` from issuing at ``cycle``,
    or None when it can issue immediately."""
    timing = state.model.timing(inst)
    prepared = _prepare(timing)
    unit_index = state.model.unit_index

    own: dict[str, int] = {}
    for rel in range(prepared.last_rel + 1):
        for event in prepared.releases_by_rel.get(rel, ()):
            if own.get(event.unit, 0) > 0:
                own[event.unit] = max(0, own[event.unit] - event.count)
        for acq_rel, events in prepared.acquires:
            if acq_rel != rel:
                continue
            for event in events:
                held = own.get(event.unit, 0)
                free = state.free_units(cycle + rel, unit_index[event.unit]) - held
                if free < event.count:
                    return Hazard("structural", cycle + rel, unit=event.unit)
                own[event.unit] = held + event.count

    for rel, reg in prepared.reads:
        if cycle + rel < state.value_ready(reg):
            return Hazard("raw", cycle + rel, register=reg)

    for rel, reg in prepared.writes:
        avail = cycle + rel
        if avail < state.value_ready(reg):
            return Hazard("waw", avail, register=reg)
        if avail <= state.last_read(reg):
            return Hazard("war", avail, register=reg)

    return None


def stall_breakdown(
    cycle: int, state: PipelineState, inst: Instruction
) -> list[Hazard]:
    """One hazard per stalled cycle until the instruction can issue —
    the full story of a delayed issue."""
    hazards: list[Hazard] = []
    start = cycle
    while True:
        hazard = explain_stall(start, state, inst)
        if hazard is None:
            return hazards
        hazards.append(hazard)
        start += 1
        if len(hazards) > 4096:  # pragma: no cover - deadlock guard
            raise RuntimeError("instruction can never issue")
