"""Stall diagnosis: *why* can't this instruction issue yet?

``pipeline_stalls`` answers "how long"; tools and humans also ask
"why". :func:`explain_stall` re-runs the hazard checks for one candidate
start cycle and reports the first failing condition — a structural
hazard on a named unit, or a RAW/WAW/WAR hazard on a named register —
so schedules can be debugged and the examples can annotate their
charts. :func:`all_hazards` reports *every* failing condition at the
cycle (hazards overlap: a candidate can be blocked by a busy unit and a
pending operand at once), which is what the observability layer's
attribution buckets consume so they never undercount.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Instruction
from ..isa.registers import Reg
from ..obs.recorder import Recorder
from ..obs.report import HAZARDS, STALL_CYCLES
from .stalls import _Prepared, _prepare
from .state import PipelineState


@dataclass(frozen=True)
class Hazard:
    """One reason an instruction cannot start at a given cycle."""

    kind: str  # 'structural' | 'raw' | 'waw' | 'war'
    cycle: int  # absolute cycle of the failing check
    unit: str | None = None
    register: Reg | None = None

    def __str__(self) -> str:
        if self.kind == "structural":
            return f"structural hazard on {self.unit} at cycle {self.cycle}"
        return f"{self.kind.upper()} hazard on {self.register} at cycle {self.cycle}"

    def labels(self) -> dict[str, str]:
        """The attribution-bucket key: hazard kind plus the contended
        unit (structural) or register class (data hazards)."""
        if self.kind == "structural":
            return {"kind": self.kind, "unit": self.unit or "?"}
        kind_name = self.register.kind.name if self.register else "?"
        return {"kind": self.kind, "regclass": kind_name}


def _collect_hazards(
    cycle: int,
    state: PipelineState,
    prepared: _Prepared,
    *,
    first_only: bool,
) -> list[Hazard]:
    """The hazard checks of ``stalls._fits``, reporting failures instead
    of bailing. A failed acquire is treated as granted so later checks
    still run and overlapping hazards all surface; check order matches
    ``_fits`` exactly, so the first element is *the* blocking hazard."""
    unit_index = state.model.unit_index
    hazards: list[Hazard] = []

    own: dict[str, int] = {}
    for rel in range(prepared.last_rel + 1):
        for event in prepared.releases_by_rel.get(rel, ()):
            if own.get(event.unit, 0) > 0:
                own[event.unit] = max(0, own[event.unit] - event.count)
        for acq_rel, events in prepared.acquires:
            if acq_rel != rel:
                continue
            for event in events:
                held = own.get(event.unit, 0)
                free = state.free_units(cycle + rel, unit_index[event.unit]) - held
                if free < event.count:
                    hazards.append(Hazard("structural", cycle + rel, unit=event.unit))
                    if first_only:
                        return hazards
                own[event.unit] = held + event.count

    for rel, reg in prepared.reads:
        if cycle + rel < state.value_ready(reg):
            hazards.append(Hazard("raw", cycle + rel, register=reg))
            if first_only:
                return hazards

    for rel, reg in prepared.writes:
        avail = cycle + rel
        if avail < state.value_ready(reg):
            hazards.append(Hazard("waw", avail, register=reg))
            if first_only:
                return hazards
        if avail <= state.last_read(reg):
            hazards.append(Hazard("war", avail, register=reg))
            if first_only:
                return hazards

    return hazards


def explain_stall(
    cycle: int, state: PipelineState, inst: Instruction
) -> Hazard | None:
    """The first hazard preventing ``inst`` from issuing at ``cycle``,
    or None when it can issue immediately."""
    timing = state.model.timing(inst)
    hazards = _collect_hazards(
        cycle, state, _prepare(timing, state.model), first_only=True
    )
    return hazards[0] if hazards else None


def all_hazards(
    cycle: int, state: PipelineState, inst: Instruction
) -> list[Hazard]:
    """Every failing condition keeping ``inst`` from issuing at
    ``cycle`` (empty when it can issue). The first element is always
    :func:`explain_stall`'s answer; the rest are the overlapping hazards
    it hides."""
    timing = state.model.timing(inst)
    return _collect_hazards(
        cycle, state, _prepare(timing, state.model), first_only=False
    )


def stall_breakdown(
    cycle: int, state: PipelineState, inst: Instruction
) -> list[Hazard]:
    """One hazard per stalled cycle until the instruction can issue —
    the full story of a delayed issue."""
    hazards: list[Hazard] = []
    start = cycle
    while True:
        hazard = explain_stall(start, state, inst)
        if hazard is None:
            return hazards
        hazards.append(hazard)
        start += 1
        if len(hazards) > 4096:  # pragma: no cover - deadlock guard
            raise RuntimeError("instruction can never issue")


def attribute_stalls(
    recorder: Recorder,
    state: PipelineState,
    prepared: _Prepared,
    requested: int,
    issue_cycle: int,
) -> None:
    """Classify every stalled cycle in ``[requested, issue_cycle)`` into
    the observability buckets.

    Each stalled cycle counts exactly once under ``STALL_CYCLES`` (its
    primary, first-failing hazard) — so the bucket totals sum to the
    walk's ``stalls`` — and once per failing condition under
    ``HAZARDS``, which includes the overlapping ones. Must run against
    the pre-commit state (before the instruction's own effects land).
    """
    for cycle in range(requested, issue_cycle):
        hazards = _collect_hazards(cycle, state, prepared, first_only=False)
        if not hazards:  # pragma: no cover - _fits and the walker agree
            recorder.count(STALL_CYCLES, 1, kind="unknown")
            continue
        recorder.count(STALL_CYCLES, 1, **hazards[0].labels())
        for hazard in hazards:
            recorder.count(HAZARDS, 1, **hazard.labels())
