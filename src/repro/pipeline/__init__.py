"""The in-order superscalar pipeline model (paper §3.2 and Appendix A)."""

from .diagnose import Hazard, all_hazards, attribute_stalls, explain_stall, stall_breakdown
from .ooo import OoOConfig, OoORun, OoOSimulator, ooo_timed_run
from .simulator import BlockSimulator, BlockTiming
from .stalls import (
    MAX_STALL_SEARCH,
    PipelineDeadlock,
    WalkResult,
    issue,
    pipeline_stalls,
    walk,
)
from .state import HeldInterval, PipelineState
from .tables import (
    LeanPipeline,
    PipelineTables,
    TableMiss,
    attach_tables,
    compile_tables,
    detach_tables,
)
from .timing import TimedRun, timed_run
from .viz import schedule_chart, unit_occupancy

__all__ = [
    "BlockSimulator",
    "BlockTiming",
    "Hazard",
    "HeldInterval",
    "LeanPipeline",
    "MAX_STALL_SEARCH",
    "OoOConfig",
    "OoORun",
    "OoOSimulator",
    "PipelineDeadlock",
    "PipelineState",
    "PipelineTables",
    "TableMiss",
    "TimedRun",
    "WalkResult",
    "all_hazards",
    "attach_tables",
    "attribute_stalls",
    "compile_tables",
    "detach_tables",
    "explain_stall",
    "issue",
    "ooo_timed_run",
    "pipeline_stalls",
    "schedule_chart",
    "stall_breakdown",
    "timed_run",
    "unit_occupancy",
    "walk",
]
