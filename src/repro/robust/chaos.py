"""Process-level chaos testing for the parallel pipeline.

:mod:`repro.robust.faults` corrupts *in-process* components (models,
encodings, scheduler decisions). This module attacks the places where
the system leaves a single process: worker pools, IPC, and persisted
state. Five fault classes, each injected into a live build of a
generated workload running with ``jobs > 1``:

* ``crash-worker`` — a worker calls ``os._exit`` whenever its shard
  contains a chosen *poison region* (persistent across retries, so
  bisection must isolate it). Contained when supervision degrades the
  poisoned region to the serial path and the edit completes.
* ``hang-worker`` — one worker (first to claim the one-shot token)
  sleeps far past the shard deadline. Contained when the deadline
  fires, the wedged pool is torn down, and the shard retries clean.
* ``corrupt-ipc`` — one worker tampers with a result tuple *without*
  fixing its integrity checksum. Contained when the parent rejects the
  result (``parallel.ipc_rejected``) instead of caching it.
* ``torn-ledger`` — a ledger append is cut mid-record, the torn-write
  signature of a crash. Contained when the tolerant reader recovers
  every complete record, flags the torn tail, and the gate still runs.
* ``bitflip-cache`` — a bit flips in a stored cache entry. Contained
  when lookup drops the entry on checksum mismatch
  (``schedule_cache.corrupt_dropped``) and re-schedules.

Every class additionally asserts the **byte-identity invariant**: the
final text bytes equal a clean serial build's. Chaos may cost wall
clock; it may never cost an edit.

Workers and the parent share no memory, so injection is coordinated
through the filesystem: :data:`CHAOS_DIR_ENV` names a directory where
one-shot faults are claimed via ``O_CREAT | O_EXCL`` token files
(exactly-once across any start method) and the crash fault's poison
digest is persisted. The chaos worker functions are module-level (and
therefore picklable) wrappers around the real
:func:`~repro.parallel.executor._schedule_shard`.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field

from ..core.dependence import SchedulingPolicy
from ..core.regions import split_regions
from ..core.verify import DEFAULT_SEED
from ..eel.cfg import build_cfg
from ..eel.editor import Editor
from ..eel.executable import Executable
from ..obs.ledger import append_record, make_record, read_ledger, read_ledger_tolerant
from ..obs.recorder import MetricsRecorder
from ..obs.report import (
    CACHE_CORRUPT,
    PARALLEL_DEGRADED,
    PARALLEL_IPC_REJECTED,
    PARALLEL_WORKER_CRASHES,
    PARALLEL_WORKER_HANGS,
)
from ..spawn.model import MachineModel
from ..workloads.generator import WorkloadSpec, generate

# repro.parallel imports this package (guard, supervise) at module
# level, so importing it back here at import time would deadlock the
# partially-initialized module — everything from repro.parallel is
# imported lazily inside the functions below.

#: Directory workers look in for chaos tokens; unset means no chaos.
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"

#: Exit status a chaos-crashed worker dies with — distinctive in core
#: dumps and CI logs.
CRASH_EXIT_STATUS = 17

#: The five fault classes, in run order. ``storage`` classes do not
#: need worker processes and run fast; ``worker`` classes drive pools.
CHAOS_FAULTS = (
    "crash-worker",
    "hang-worker",
    "corrupt-ipc",
    "torn-ledger",
    "bitflip-cache",
)

_POISON_FILE = "poison.digest"
_HANG_SLEEP_S = 600.0


# -- worker-side injectors (must stay module-level: they are pickled) ------------


def _chaos_dir() -> str | None:
    return os.environ.get(CHAOS_DIR_ENV) or None


def _claim_token(name: str) -> bool:
    """Claim a one-shot fault token; True exactly once per directory."""
    directory = _chaos_dir()
    if directory is None:
        return False
    try:
        fd = os.open(
            os.path.join(directory, f"{name}.token"),
            os.O_CREAT | os.O_EXCL | os.O_WRONLY,
        )
    except (FileExistsError, OSError):
        return False
    os.close(fd)
    return True


def _poison_digest() -> str | None:
    directory = _chaos_dir()
    if directory is None:
        return None
    try:
        with open(os.path.join(directory, _POISON_FILE), encoding="ascii") as handle:
            return handle.read().strip() or None
    except OSError:
        return None


def chaos_crash_worker(payload):
    """Die without cleanup whenever the shard holds the poison region.

    Persistent (no token): every retry containing the poison crashes
    again, so only bisection down to the poisoned singleton — which
    then quarantines — makes progress. That is exactly the supervision
    property under test.
    """
    from ..parallel.executor import _schedule_shard
    from ..parallel.fingerprint import region_digest

    poison = _poison_digest()
    if poison is not None:
        regions = payload[3]
        if any(region_digest(list(region)) == poison for region in regions):
            os._exit(CRASH_EXIT_STATUS)
    return _schedule_shard(payload)


def chaos_hang_worker(payload):
    """Wedge (sleep far past any deadline) once, then behave."""
    from ..parallel.executor import _schedule_shard

    if _claim_token("hang"):
        time.sleep(_HANG_SLEEP_S)
    return _schedule_shard(payload)


def chaos_corrupt_ipc_worker(payload):
    """Return one tampered result without updating its checksum."""
    from ..parallel.executor import _schedule_shard

    results, snapshot = _schedule_shard(payload)
    if results and _claim_token("corrupt-ipc"):
        digest, order, original, scheduled, verified, checksum = results[0]
        results = [
            (digest, order, original, scheduled + 1, verified, checksum)
        ] + list(results[1:])
    return results, snapshot


# -- outcomes --------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosOutcome:
    """One fault class's verdict."""

    fault: str
    #: ``worker`` (pool faults), ``ipc``, or ``storage``.
    layer: str
    #: how many faults were provoked (crashes observed, lines torn, ...).
    injected: int
    #: how many of them the system demonstrably contained.
    contained: int
    #: did the faulted build produce the clean serial bytes?
    byte_identical: bool
    details: tuple[str, ...] = ()

    @property
    def escaped(self) -> bool:
        return self.contained < self.injected or not self.byte_identical


@dataclass
class ChaosReport:
    """Aggregate chaos-suite verdict for one machine model."""

    machine: str
    jobs: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(outcome.injected for outcome in self.outcomes)

    @property
    def contained(self) -> int:
        return sum(outcome.contained for outcome in self.outcomes)

    @property
    def escaped(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.escaped)

    @property
    def clean(self) -> bool:
        return all(
            not outcome.escaped and outcome.injected > 0
            for outcome in self.outcomes
        ) and bool(self.outcomes)

    def render(self) -> str:
        lines = [f"chaos suite against {self.machine} (jobs={self.jobs}):"]
        for outcome in self.outcomes:
            verdict = "ESCAPED" if outcome.escaped else "contained"
            bytes_note = "" if outcome.byte_identical else ", BYTES DIVERGED"
            lines.append(
                f"  [{outcome.layer:7}] {outcome.fault:14} "
                f"{outcome.contained}/{outcome.injected} {verdict}{bytes_note}"
            )
            for detail in outcome.details:
                lines.append(f"      - {detail}")
        lines.append(
            f"  => {self.contained}/{self.injected} fault(s) contained; "
            + ("clean" if self.clean else f"{self.escaped} class(es) escaped")
        )
        return "\n".join(lines)


# -- the suite -------------------------------------------------------------------


def default_chaos_workload() -> Executable:
    """A generated multi-routine workload big enough to shard."""
    return generate(
        WorkloadSpec(name="chaos", seed=7, kind="int", avg_block_size=8.0)
    ).executable


def _text(executable: Executable) -> bytes:
    return bytes(executable.text_section().data)


def _first_region_digest(executable: Executable) -> str | None:
    from ..parallel.fingerprint import region_digest

    for block in build_cfg(executable):
        for region in split_regions(list(block.body)):
            instructions = list(region.instructions)
            if len(instructions) >= 2:
                return region_digest(instructions)
    return None


class _ChaosArena:
    """A private token directory, exported to workers via the env."""

    def __init__(self, workdir: str | None) -> None:
        self._workdir = workdir
        self._dir: str | None = None
        self._saved: str | None = None

    def __enter__(self) -> str:
        self._dir = tempfile.mkdtemp(prefix="chaos-", dir=self._workdir)
        self._saved = os.environ.get(CHAOS_DIR_ENV)
        os.environ[CHAOS_DIR_ENV] = self._dir
        return self._dir

    def __exit__(self, *exc_info) -> None:
        if self._saved is None:
            os.environ.pop(CHAOS_DIR_ENV, None)
        else:
            os.environ[CHAOS_DIR_ENV] = self._saved


def run_chaos_suite(
    model: MachineModel,
    *,
    executable: Executable | None = None,
    policy: SchedulingPolicy | None = None,
    jobs: int = 2,
    shard_deadline_s: float = 5.0,
    verify_seed: int = DEFAULT_SEED,
    only: tuple[str, ...] | None = None,
    workdir: str | None = None,
) -> ChaosReport:
    """Run the chaos catalog against ``model``; see the module docstring.

    ``only`` restricts to a subset of :data:`CHAOS_FAULTS` (the storage
    classes run without worker pools and are cheap). ``workdir`` hosts
    the token directory and the scratch ledger (a temp dir otherwise).
    ``shard_deadline_s`` is deliberately short — the hang class waits
    it out once.
    """
    from ..parallel.executor import (
        ParallelOptions,
        ParallelScheduler,
        make_transform,
    )

    if only is not None:
        unknown = set(only) - set(CHAOS_FAULTS)
        if unknown:
            raise ValueError(
                f"unknown chaos fault(s): {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(CHAOS_FAULTS)})"
            )
    policy = policy or SchedulingPolicy()
    if executable is None:
        executable = default_chaos_workload()
    report = ChaosReport(machine=model.name, jobs=jobs)

    def wanted(fault: str) -> bool:
        return only is None or fault in only

    # The ground truth every class is judged against.
    reference = _text(Editor(executable).build(make_transform(model, policy)))

    def parallel_build(worker_fn, *, deadline=shard_deadline_s, retries=2):
        """One jobs>1 build with a chaos worker; returns (bytes, transform,
        recorder metrics)."""
        recorder = MetricsRecorder()
        transform = make_transform(
            model,
            policy,
            recorder,
            options=ParallelOptions(
                jobs=jobs,
                shard_deadline_s=deadline,
                max_shard_retries=retries,
            ),
            verify_seed=verify_seed,
        )
        assert isinstance(transform, ParallelScheduler)
        transform.worker_fn = worker_fn
        edited = Editor(executable, recorder=recorder).build(transform)
        return _text(edited), transform, recorder.metrics

    if wanted("crash-worker"):
        report.outcomes.append(
            _run_crash_class(executable, reference, parallel_build, workdir)
        )
    if wanted("hang-worker"):
        report.outcomes.append(
            _run_hang_class(reference, parallel_build, workdir)
        )
    if wanted("corrupt-ipc"):
        report.outcomes.append(
            _run_corrupt_ipc_class(reference, parallel_build, workdir)
        )
    if wanted("torn-ledger"):
        report.outcomes.append(_run_torn_ledger_class(model, workdir))
    if wanted("bitflip-cache"):
        report.outcomes.append(
            _run_bitflip_cache_class(model, executable, policy, reference)
        )
    return report


def _run_crash_class(executable, reference, parallel_build, workdir) -> ChaosOutcome:
    details: list[str] = []
    with _ChaosArena(workdir) as arena:
        poison = _first_region_digest(executable)
        if poison is None:
            return ChaosOutcome(
                fault="crash-worker",
                layer="worker",
                injected=0,
                contained=0,
                byte_identical=True,
                details=("workload has no schedulable region to poison",),
            )
        with open(
            os.path.join(arena, _POISON_FILE), "w", encoding="ascii"
        ) as handle:
            handle.write(poison)
        text, transform, metrics = parallel_build(chaos_crash_worker)
    crashes = int(metrics.counter_total(PARALLEL_WORKER_CRASHES))
    degraded = int(metrics.counter_total(PARALLEL_DEGRADED))
    supervision = transform.supervision
    quarantined = len(supervision.quarantined) if supervision else 0
    contained = crashes if (degraded >= 1 and quarantined >= 1) else 0
    if crashes == 0:
        details.append("poisoned worker never crashed — injection failed")
    if degraded < 1:
        details.append("parallel.degraded_serial never counted")
    if quarantined != 1:
        details.append(
            f"{quarantined} unit(s) quarantined; the poison region "
            "should quarantine exactly alone"
        )
        contained = 0
    return ChaosOutcome(
        fault="crash-worker",
        layer="worker",
        injected=crashes,
        contained=contained,
        byte_identical=text == reference,
        details=tuple(details),
    )


def _run_hang_class(reference, parallel_build, workdir) -> ChaosOutcome:
    details: list[str] = []
    with _ChaosArena(workdir):
        text, transform, metrics = parallel_build(chaos_hang_worker)
    hangs = int(metrics.counter_total(PARALLEL_WORKER_HANGS))
    if hangs == 0:
        details.append("shard deadline never fired — injection failed")
    return ChaosOutcome(
        fault="hang-worker",
        layer="worker",
        injected=max(hangs, 1) if hangs else 0,
        contained=hangs,
        byte_identical=text == reference,
        details=tuple(details),
    )


def _run_corrupt_ipc_class(reference, parallel_build, workdir) -> ChaosOutcome:
    details: list[str] = []
    with _ChaosArena(workdir):
        text, transform, metrics = parallel_build(chaos_corrupt_ipc_worker)
    rejected = int(metrics.counter_total(PARALLEL_IPC_REJECTED))
    if rejected == 0:
        details.append(
            "tampered worker result was accepted — checksum validation failed"
        )
    return ChaosOutcome(
        fault="corrupt-ipc",
        layer="ipc",
        injected=1,
        contained=min(rejected, 1),
        byte_identical=text == reference,
        details=tuple(details),
    )


def _run_torn_ledger_class(model, workdir) -> ChaosOutcome:
    details: list[str] = []
    with tempfile.TemporaryDirectory(prefix="chaos-ledger-", dir=workdir) as tmp:
        path = os.path.join(tmp, "ledger.jsonl")
        for index in range(3):
            append_record(
                path,
                make_record(
                    "chaos",
                    run={"workload": "chaos", "machine": model.name, "n": index},
                    results={"value": index},
                    sha="",
                ),
                fsync=True,
            )
        # Tear the final record exactly as a mid-append crash would:
        # truncate inside the line, leaving no trailing newline.
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(size - 25)
        strict_raised = False
        try:
            read_ledger(path)
        except ValueError:
            strict_raised = True
        recovery = read_ledger_tolerant(path)
        contained = int(
            strict_raised
            and recovery.truncated_tail
            and len(recovery.records) == 2
            and recovery.quarantine_path is not None
            and os.path.exists(recovery.quarantine_path)
        )
        if not contained:
            details.append(
                f"recovered {len(recovery.records)}/2 records, "
                f"truncated_tail={recovery.truncated_tail}, "
                f"strict_raised={strict_raised}"
            )
    return ChaosOutcome(
        fault="torn-ledger",
        layer="storage",
        injected=1,
        contained=contained,
        byte_identical=True,
        details=tuple(details),
    )


def _run_bitflip_cache_class(model, executable, policy, reference) -> ChaosOutcome:
    from dataclasses import replace

    from ..parallel.cache import ScheduleCache
    from ..parallel.executor import make_transform

    details: list[str] = []
    recorder = MetricsRecorder()
    cache = ScheduleCache(recorder=recorder)
    Editor(executable, recorder=recorder).build(
        make_transform(model, policy, recorder, cache=cache)
    )
    flipped = 0
    for key, entry in list(cache._entries.items()):
        # Flip one bit in the stored cycle count, leaving the stored
        # checksum stale — memory corruption in miniature.
        cache._entries[key] = replace(
            entry, scheduled_cycles=entry.scheduled_cycles ^ 1
        )
        flipped += 1
        if flipped >= 4:
            break
    rebuilt = _text(
        Editor(executable, recorder=recorder).build(
            make_transform(model, policy, recorder, cache=cache)
        )
    )
    dropped = cache.corruption_dropped
    if dropped < flipped:
        details.append(
            f"only {dropped}/{flipped} bit-flipped entries were dropped"
        )
    if int(recorder.metrics.counter_total(CACHE_CORRUPT)) < flipped:
        details.append("schedule_cache.corrupt_dropped undercounted")
    return ChaosOutcome(
        fault="bitflip-cache",
        layer="storage",
        injected=flipped,
        contained=min(dropped, flipped),
        byte_identical=rebuilt == reference,
        details=tuple(details),
    )
