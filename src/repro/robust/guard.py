"""Guarded scheduling: verify every block's schedule, or refuse it.

An executable editor that reorders instructions must *prove* each edit
safe or decline to make it. :class:`GuardedBlockScheduler` wraps the
ordinary :class:`~repro.core.block_scheduler.BlockScheduler` in exactly
that contract:

* every scheduled block is re-checked by
  :func:`~repro.core.verify.verify_schedule` (permutation + dependence
  DAG + optional differential execution);
* on any verification failure — or any exception out of the scheduler —
  the block **falls back to its original instruction order** and is
  *quarantined*: a :class:`QuarantineReport` is recorded and counted
  through the :mod:`repro.obs` recorder, and the edit proceeds;
* per-block and per-routine budgets (:class:`GuardBudget`) bound the
  work: oversized blocks and blocks past a wall-clock deadline degrade
  gracefully to unscheduled instrumentation;
* the machine model itself is linted at construction
  (:func:`~repro.spawn.validate.validate_machine`); a corrupt model
  quarantines *all* scheduling rather than corrupting output.

In **strict** mode the guard raises instead of falling back:
:class:`~repro.errors.VerificationError` on a failed proof,
:class:`~repro.errors.BudgetExceeded` on an exhausted budget, and
:class:`~repro.spawn.model.ModelError` on a bad machine description.

With no faults present the guarded path emits byte-identical schedules
to the unguarded path — the guard only ever *observes* the inner
scheduler's output or discards it wholesale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analyze.static_verify import static_verify_schedule
from ..analyze.sym_verify import symbolic_verify_schedule
from ..core.block_scheduler import BlockScheduler, SchedulerStats
from ..core.dependence import SchedulingPolicy, build_dependence_graph
from ..core.regions import join_regions, split_regions
from ..core.verify import DEFAULT_SEED, VerificationResult, verify_schedule
from ..eel.cfg import BasicBlock
from ..errors import BudgetExceeded, ReproError, VerificationError
from ..isa.instruction import Instruction
from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.report import (
    ANALYZE_STATIC_ESCALATED,
    ANALYZE_STATIC_PASS,
    ANALYZE_SYMBOLIC_ESCALATED,
    ANALYZE_SYMBOLIC_PASS,
    ANALYZE_SYMBOLIC_REFUTED,
    GUARD_BLOCKS_VERIFIED,
    GUARD_CACHE_SERVED,
    GUARD_FALLBACKS,
    GUARD_QUARANTINED,
    SCHED_BLOCKS,
)
from ..spawn.model import MachineModel, ModelError
from ..spawn.validate import validate_machine


@dataclass(frozen=True)
class GuardBudget:
    """Resource bounds for guarded scheduling; ``None`` disables a bound.

    All deadlines are cooperative wall-clock checks made between blocks
    and around each block's schedule-and-verify step — a budget cannot
    preempt a block mid-schedule, it can only refuse to *use* a result
    that arrived too late (or skip scheduling once the routine deadline
    has passed).
    """

    #: blocks with more instructions than this are not scheduled at all.
    max_block_instructions: int | None = None
    #: per-block schedule+verify wall-clock deadline, in seconds.
    block_deadline_s: float | None = None
    #: cumulative wall-clock deadline across every block this guard
    #: schedules (one editor pass = one routine/program).
    routine_deadline_s: float | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.max_block_instructions is None
            and self.block_deadline_s is None
            and self.routine_deadline_s is None
        )


@dataclass(frozen=True)
class QuarantineReport:
    """One refused schedule: which block, why, and what was suspect."""

    #: original CFG block index (-1 when the failure is not block-local,
    #: e.g. a corrupt machine model).
    block: int
    #: the block's original address (0 when not block-local).
    address: int
    #: 'verification' | 'scheduler-error' | 'budget' | 'model'
    kind: str
    reason: str
    #: rendered offending instructions, when identifiable.
    offending: tuple[str, ...] = ()
    #: for 'scheduler-error': whether the exception was ReproError-rooted.
    #: The fault-injection harness only counts *typed* failures as
    #: caught — an untyped crash was contained, not diagnosed.
    typed: bool = True

    def __str__(self) -> str:
        where = f"block {self.block} @ {self.address:#x}" if self.block >= 0 else "model"
        text = f"[{self.kind}] {where}: {self.reason}"
        if self.offending:
            text += " | " + " ; ".join(self.offending)
        return text


class GuardedBlockScheduler:
    """A :data:`~repro.eel.editor.BlockTransform` with verify-and-fallback.

    Drop-in replacement for :class:`BlockScheduler` as an editor
    transform. ``inner`` defaults to a fresh ``BlockScheduler``; tests
    and the fault-injection harness substitute deliberately broken
    schedulers to prove the guard catches them.
    """

    def __init__(
        self,
        model: MachineModel,
        policy: SchedulingPolicy | None = None,
        recorder: Recorder | None = None,
        *,
        inner: BlockScheduler | None = None,
        budget: GuardBudget | None = None,
        strict: bool = False,
        verify_trials: int = 4,
        verify_seed: int = DEFAULT_SEED,
        static_verify: bool = True,
        symbolic_verify: bool = True,
        validate_model: bool = True,
        cache=None,
        clock=time.perf_counter,
    ) -> None:
        self.model = model
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        if cache is not None and inner is not None and getattr(inner, "cache", None) is not None:
            raise ValueError(
                "pass the schedule cache to the guard, not the inner "
                "scheduler: an inner-owned cache would memoize schedules "
                "the guard later quarantines"
            )
        self.inner = inner if inner is not None else BlockScheduler(
            model, policy, self.recorder
        )
        self.policy = self.inner.policy
        self.cache = cache
        self._cache_context = (
            cache.context_for(model, self.policy) if cache is not None else None
        )
        self.budget = budget if budget is not None else GuardBudget()
        self.strict = strict
        self.verify_trials = verify_trials
        self.verify_seed = verify_seed
        self.static_verify = static_verify
        self.symbolic_verify = symbolic_verify
        self._clock = clock
        self._elapsed = 0.0
        self.quarantine: list[QuarantineReport] = []
        self.model_findings = ()
        if validate_model:
            self.model_findings = tuple(
                f
                for f in validate_machine(model, require_full_isa=False)
                if f.severity == "error"
            )
        if self.model_findings:
            reason = "; ".join(str(f) for f in self.model_findings[:4])
            if strict:
                raise ModelError(
                    f"{model.name}: description failed validation: {reason}"
                )
            self._record(
                QuarantineReport(block=-1, address=0, kind="model", reason=reason)
            )

    # -- observers ---------------------------------------------------------------

    @property
    def stats(self) -> SchedulerStats:
        """The inner scheduler's accumulated stats (unverified blocks
        included: they describe attempted scheduling work)."""
        return self.inner.stats

    @property
    def fallbacks(self) -> int:
        """Blocks emitted in their original order."""
        return sum(1 for report in self.quarantine if report.block >= 0)

    # -- the editor transform protocol -------------------------------------------

    def __call__(
        self, block: BasicBlock, body: list[Instruction]
    ) -> tuple[list[Instruction], Instruction | None]:
        original = list(body)

        if self.model_findings:
            # The model is quarantined wholesale; every block degrades.
            self._count_fallback()
            return original, block.delay

        limit = self.budget.max_block_instructions
        if limit is not None and len(original) > limit:
            self._budget_stop(
                block,
                "max_block_instructions",
                f"{len(original)} instructions exceed the per-block "
                f"budget of {limit}",
            )
            return original, block.delay
        deadline = self.budget.routine_deadline_s
        if deadline is not None and self._elapsed > deadline:
            self._budget_stop(
                block,
                "routine_deadline_s",
                f"routine budget of {deadline:g}s exhausted after "
                f"{self._elapsed:.3f}s",
            )
            return original, block.delay

        if self.cache is not None:
            served = self._serve_from_cache(original)
            if served is not None:
                # Every region of this block was proven on an earlier
                # insert; replay the permutations and emit exactly as a
                # freshly verified block would.
                self.recorder.count(GUARD_CACHE_SERVED)
                self.recorder.count(GUARD_BLOCKS_VERIFIED)
                delay = block.delay
                if self.policy.fill_delay_slots:
                    served, delay = self.inner._refill_delay_slot(block, served)
                self.recorder.count(SCHED_BLOCKS)
                return served, delay

        start = self._clock()
        try:
            with self.recorder.span("robust.guard_block", block=block.index):
                scheduled = self.inner.schedule_body(original)
                verdict = self._verify(original, scheduled)
        except Exception as exc:  # a buggy scheduler must not crash the edit
            if self.strict:
                raise VerificationError(
                    f"scheduler raised {type(exc).__name__}: {exc}",
                    block=block.index,
                ) from exc
            self._quarantine_block(
                block,
                "scheduler-error",
                f"{type(exc).__name__}: {exc}",
                typed=isinstance(exc, ReproError),
            )
            return original, block.delay
        self._elapsed += self._clock() - start

        if not verdict:
            reason = "; ".join(verdict.failures)
            if self.strict:
                raise VerificationError(
                    reason, failures=tuple(verdict.failures), block=block.index
                )
            self._quarantine_block(
                block,
                "verification",
                reason,
                offending=_offenders(original, scheduled, self.policy),
            )
            return original, block.delay

        block_deadline = self.budget.block_deadline_s
        block_elapsed = self._clock() - start
        if block_deadline is not None and block_elapsed > block_deadline:
            self._budget_stop(
                block,
                "block_deadline_s",
                f"block took {block_elapsed:.3f}s against a deadline of "
                f"{block_deadline:g}s",
            )
            return original, block.delay

        # Proven safe: emit, refilling the delay slot exactly as the
        # unguarded scheduler would.
        if self.cache is not None:
            self._insert_verified(scheduled)
        self.recorder.count(GUARD_BLOCKS_VERIFIED)
        delay = block.delay
        if self.policy.fill_delay_slots:
            scheduled, delay = self.inner._refill_delay_slot(block, scheduled)
        self.recorder.count(SCHED_BLOCKS)
        return scheduled, delay

    # -- verification ------------------------------------------------------------

    def _verify(
        self, original: list[Instruction], scheduled: list[Instruction]
    ) -> VerificationResult:
        """The verification gate chain: static DAG proof, then symbolic
        translation validation, then differential execution for whatever
        remains inconclusive.

        A static *refutation* is final — it is exactly the dynamic
        verifier's permutation/DAG checks, so the dynamic verdict would
        be the same failure. A static *proof* means every reordered
        pair is fully ordered by the dependence DAG, so both orders
        compute identical states and the differential battery cannot
        fail; skipping it changes nothing but cost. The symbolic gate
        extends the proof to reorders the DAG cannot decide (memory
        moves across the instrumentation/original boundary): identical
        architectural terms on both sides subsume the battery, a
        witness-confirmed mismatch is a final refutation, and anything
        else escalates — so guarded output stays byte-identical.
        """
        structural_checked = False
        if self.static_verify:
            with self.recorder.span("verify.static"):
                static = static_verify_schedule(
                    original, scheduled, policy=self.policy
                )
            if static.proven:
                self.recorder.count(ANALYZE_STATIC_PASS)
                return VerificationResult(True)
            if static.refuted:
                return VerificationResult(False, list(static.reasons))
            self.recorder.count(ANALYZE_STATIC_ESCALATED)
            structural_checked = True
        if self.symbolic_verify:
            with self.recorder.span("verify.symbolic"):
                verdict = symbolic_verify_schedule(
                    original,
                    scheduled,
                    policy=self.policy,
                    check_structure=not structural_checked,
                    seed=self.verify_seed,
                )
            if verdict.proven:
                self.recorder.count(ANALYZE_SYMBOLIC_PASS)
                return VerificationResult(True)
            if verdict.refuted:
                self.recorder.count(ANALYZE_SYMBOLIC_REFUTED)
                reasons = list(verdict.reasons)
                if verdict.counterexample is not None:
                    reasons.append(f"counterexample: {verdict.counterexample}")
                return VerificationResult(False, reasons)
            self.recorder.count(ANALYZE_SYMBOLIC_ESCALATED)
        with self.recorder.span("verify.dynamic"):
            return verify_schedule(
                original,
                scheduled,
                policy=self.policy,
                trials=self.verify_trials,
                seed=self.verify_seed,
            )

    # -- schedule cache ----------------------------------------------------------

    def _serve_from_cache(self, original: list[Instruction]) -> list[Instruction] | None:
        """The whole block rebuilt from *verified* cache entries, or
        ``None`` if any region misses (unverified and poisoned entries
        are invisible here — they must be re-proven, not trusted)."""
        regions = split_regions(original)
        replayed = []
        for region in regions:
            if not region.instructions:
                replayed.append(None)
                continue
            entry = self.cache.lookup(
                self._cache_context,
                list(region.instructions),
                require_verified=True,
            )
            if entry is None:
                return None
            replayed.append(entry.replay(list(region.instructions)))
        for result in replayed:
            if result is not None:
                self.inner.stats.merge(result)
                if self.recorder.enabled:
                    self.inner._replay_attribution(result.instructions)
        return join_regions(
            regions,
            [r.instructions if r is not None else [] for r in replayed],
        )

    def _insert_verified(self, scheduled: list[Instruction]) -> None:
        """Memoize the block's regions as proven — but only when the
        emitted body is exactly the join of the per-region results the
        inner scheduler recorded (a sabotaged scheduler mutates after
        the fact; its mutation was verified and refused, and its clean
        intermediate must not be trusted by proxy either)."""
        last = getattr(self.inner, "_last_schedule", None)
        if last is None:
            return
        regions, results = last
        rejoined = join_regions(
            regions,
            [r.instructions if r is not None else [] for r in results],
        )
        if rejoined != scheduled:
            return
        for region, result in zip(regions, results):
            if result is not None:
                self.cache.insert(
                    self._cache_context,
                    list(region.instructions),
                    result,
                    verified=True,
                )

    # -- internals ---------------------------------------------------------------

    def _budget_stop(self, block: BasicBlock, which: str, reason: str) -> None:
        if self.strict:
            raise BudgetExceeded(reason, budget=which, block=block.index)
        self._quarantine_block(block, "budget", reason)

    def _quarantine_block(
        self,
        block: BasicBlock,
        kind: str,
        reason: str,
        offending: tuple[str, ...] = (),
        typed: bool = True,
    ) -> None:
        self._record(
            QuarantineReport(
                block=block.index,
                address=block.address,
                kind=kind,
                reason=reason,
                offending=offending,
                typed=typed,
            )
        )
        self._count_fallback()

    def _record(self, report: QuarantineReport) -> None:
        self.quarantine.append(report)
        self.recorder.count(GUARD_QUARANTINED, kind=report.kind)

    def _count_fallback(self) -> None:
        self.recorder.count(GUARD_FALLBACKS)


def _offenders(
    original: list[Instruction],
    scheduled: list[Instruction],
    policy: SchedulingPolicy,
) -> tuple[str, ...]:
    """Pin the failure on concrete instructions, for the report."""
    counts: dict[str, int] = {}
    for inst in original:
        counts[str(inst)] = counts.get(str(inst), 0) + 1
    for inst in scheduled:
        key = str(inst)
        if counts.get(key, 0) == 0:
            return (f"extra/unknown instruction {key!r}",)
        counts[key] -= 1
    missing = [key for key, left in counts.items() if left > 0]
    if missing:
        return tuple(f"missing instruction {key!r}" for key in missing[:4])

    graph = build_dependence_graph(original, policy)
    remaining: dict[str, list[int]] = {}
    for index, inst in enumerate(original):
        remaining.setdefault(str(inst), []).append(index)
    order = [remaining[str(inst)].pop(0) for inst in scheduled]
    position = {node: pos for pos, node in enumerate(order)}
    for src in range(graph.size):
        for dst in graph.succs[src]:
            if position[src] > position[dst]:
                return (
                    f"{original[dst]!s} scheduled before its dependence "
                    f"{original[src]!s}",
                )
    return ()
