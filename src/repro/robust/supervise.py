"""Shard supervision: deadlines, bounded retry, bisection, quarantine.

The parallel scheduler ships shards of regions to worker processes.
Workers are the least trustworthy component in the pipeline: a process
can die (OOM killer, a native-extension segfault, a chaos test calling
``os._exit``), hang forever, or return garbage. None of those may ever
change the bytes of an edit — the contract is *graceful degradation*:
anything a worker fails to deliver is simply scheduled on the serial
path, which is the ground truth the parallel path replays anyway.

:class:`ShardSupervisor` enforces that contract as a small state
machine over *units* (a shard plus its retry lineage):

1. **Optimistic round** — every unit is submitted to one shared pool
   and drained in submission order, each future given the policy's
   wall-clock deadline. A hang (deadline expiry) or a crash
   (``BrokenProcessPool``) poisons the whole pool, so the suspect unit
   is penalized and every *other* unfinished unit moves to the cautious
   queue unpenalized — ``BrokenProcessPool`` fails all pending futures
   indiscriminately, and blaming innocents would quarantine healthy
   regions.
2. **Cautious rounds** — each queued unit runs alone in a fresh
   single-worker pool, which makes crash/hang attribution exact: the
   unit in the pool is the unit that killed it.
3. **Penalty** — a failed unit of more than one item is *bisected*:
   both halves re-run cautiously, so a single poisoned region ends up
   quarantining alone while its shard-mates complete. A failed
   singleton retries until ``max_retries`` is exhausted, then is
   quarantined.

Quarantined items are returned to the caller (who schedules them
serially); completed results carry hierarchical sort keys — ``(i,)``
for initial shard *i*, extended with ``0``/``1`` per split — so merge
order is deterministic no matter how retries interleaved.

Failures that retrying cannot fix — an unpicklable payload — raise
:class:`~repro.errors.ParallelError` immediately instead of burning
retries. A pool that cannot be created at all (``OSError``) quarantines
everything outstanding: total degradation to serial, bytes unchanged.
"""

from __future__ import annotations

import pickle
from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ParallelError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.report import (
    PARALLEL_SHARD_RETRIES,
    PARALLEL_WORKER_CRASHES,
    PARALLEL_WORKER_HANGS,
)

#: Per-shard wall-clock deadline. Shards are a few dozen small regions;
#: a minute of silence means a wedged worker, not a slow one.
DEFAULT_SHARD_DEADLINE_S = 60.0

#: How many times a *singleton* unit may fail before quarantine.
DEFAULT_MAX_SHARD_RETRIES = 2


@dataclass(frozen=True)
class SupervisionPolicy:
    """Deadline and retry budget for supervised shard execution."""

    shard_deadline_s: float = DEFAULT_SHARD_DEADLINE_S
    max_retries: int = DEFAULT_MAX_SHARD_RETRIES

    def __post_init__(self) -> None:
        if self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")


@dataclass(frozen=True)
class ShardFailure:
    """One observed failure of one unit (pre-retry)."""

    #: ``crash`` (worker process died), ``hang`` (deadline expired),
    #: or ``error`` (an exception the worker raised and shipped back).
    kind: str
    #: how many items the failing unit carried.
    items: int
    #: the attempt number this failure charged (1 = first failure).
    attempt: int
    detail: str = ""


@dataclass
class _Unit:
    """A shard (or a bisected fragment of one) awaiting execution."""

    key: tuple[int, ...]
    items: list
    attempt: int = 0


@dataclass
class SupervisionOutcome:
    """Everything a supervised run produced and endured."""

    #: (key, items, result) per unit the workers completed.
    completed: list = field(default_factory=list)
    failures: list[ShardFailure] = field(default_factory=list)
    #: item lists the supervisor gave up on — the caller's serial path
    #: owns them now.
    quarantined: list[list] = field(default_factory=list)
    crashes: int = 0
    hangs: int = 0
    retries: int = 0

    @property
    def degraded(self) -> bool:
        """True when anything fell back to the serial path."""
        return bool(self.quarantined)

    def completed_in_order(self) -> list:
        """Completed units sorted by hierarchical key, so merging is
        deterministic regardless of retry/completion interleaving."""
        return sorted(self.completed, key=lambda entry: entry[0])


def _kill_pool(pool) -> None:
    """Tear a pool down without waiting on wedged workers.

    ``shutdown(wait=False)`` alone would leave a hung worker alive (and
    the interpreter joining it at exit, forever), so the workers are
    terminated outright. The process table is captured *before*
    ``shutdown`` — it nulls the attribute immediately even with
    ``wait=False``. Once the workers are dead the pool's own manager
    thread detects the breakage and retires the queues and threads
    itself; nothing else must touch them or it races that cleanup.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=5)
        except Exception:
            pass


def _pickling_failure(exc: BaseException) -> bool:
    if isinstance(exc, pickle.PicklingError):
        return True
    return isinstance(exc, (TypeError, AttributeError)) and "pickle" in str(
        exc
    ).lower()


class ShardSupervisor:
    """Run shards through worker pools under deadlines with bounded,
    bisecting retry.

    ``fn`` is the picklable worker function; ``make_payload`` maps a
    unit's item list to the single argument ``fn`` receives;
    ``pool_factory(queued)`` builds an executor sized for ``queued``
    outstanding units (the caller caps it at its job count).
    """

    def __init__(
        self,
        fn: Callable,
        make_payload: Callable[[list], object],
        pool_factory: Callable[[int], object],
        *,
        policy: SupervisionPolicy | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        self.fn = fn
        self.make_payload = make_payload
        self.pool_factory = pool_factory
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    def run(self, shards: Sequence[list]) -> SupervisionOutcome:
        outcome = SupervisionOutcome()
        queue: deque[_Unit] = deque(
            _Unit(key=(index,), items=list(items))
            for index, items in enumerate(shards)
            if items
        )
        if not queue:
            return outcome
        first_round = True
        while queue:
            if first_round:
                first_round = False
                try:
                    self._optimistic_round(queue, outcome)
                except OSError as exc:
                    self._abandon(queue, outcome, exc)
            else:
                unit = queue.popleft()
                try:
                    self._cautious_one(unit, queue, outcome)
                except OSError as exc:
                    queue.appendleft(unit)
                    self._abandon(queue, outcome, exc)
        return outcome

    # -- rounds -------------------------------------------------------------------

    def _optimistic_round(
        self, queue: deque[_Unit], outcome: SupervisionOutcome
    ) -> None:
        """Submit every queued unit to one shared pool; on pool breakage
        collect what finished and route the rest to cautious retry."""
        units = list(queue)
        queue.clear()
        try:
            pool = self.pool_factory(len(units))
        except OSError:
            queue.extend(units)
            raise
        broken = False
        handled = 0
        try:
            try:
                futures = [
                    pool.submit(self.fn, self.make_payload(unit.items))
                    for unit in units
                ]
            except OSError:
                queue.extend(units)
                raise
            for unit, future in zip(units, futures):
                if broken:
                    # The pool died while an earlier future was draining.
                    # Salvage finished results; everything else re-runs
                    # cautiously with no penalty — BrokenProcessPool
                    # fails pending futures indiscriminately, so only
                    # the unit that raised first is a suspect.
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        outcome.completed.append(
                            (unit.key, unit.items, future.result())
                        )
                    else:
                        queue.append(unit)
                    handled += 1
                    continue
                try:
                    result = future.result(timeout=self.policy.shard_deadline_s)
                except FutureTimeoutError:
                    outcome.hangs += 1
                    self.recorder.count(PARALLEL_WORKER_HANGS)
                    broken = True
                    _kill_pool(pool)
                    self._penalize(
                        unit,
                        "hang",
                        f"no result within the "
                        f"{self.policy.shard_deadline_s:g}s shard deadline",
                        queue,
                        outcome,
                    )
                except BrokenProcessPool as exc:
                    outcome.crashes += 1
                    self.recorder.count(PARALLEL_WORKER_CRASHES)
                    broken = True
                    self._penalize(
                        unit,
                        "crash",
                        str(exc) or "worker process died",
                        queue,
                        outcome,
                    )
                except OSError:
                    raise
                except Exception as exc:
                    self._raise_if_unshippable(exc)
                    self._penalize(
                        unit,
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        queue,
                        outcome,
                    )
                else:
                    outcome.completed.append((unit.key, unit.items, result))
                handled += 1
        except OSError:
            queue.extend(units[handled:])
            _kill_pool(pool)
            raise
        finally:
            if broken:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True)

    def _cautious_one(
        self, unit: _Unit, queue: deque[_Unit], outcome: SupervisionOutcome
    ) -> None:
        """Run one unit alone in a fresh single-worker pool — exact
        crash/hang attribution, at the price of a pool per unit."""
        pool = self.pool_factory(1)
        broken = False
        try:
            future = pool.submit(self.fn, self.make_payload(unit.items))
            try:
                result = future.result(timeout=self.policy.shard_deadline_s)
            except FutureTimeoutError:
                outcome.hangs += 1
                self.recorder.count(PARALLEL_WORKER_HANGS)
                broken = True
                _kill_pool(pool)
                self._penalize(
                    unit,
                    "hang",
                    f"no result within the "
                    f"{self.policy.shard_deadline_s:g}s shard deadline",
                    queue,
                    outcome,
                )
            except BrokenProcessPool as exc:
                outcome.crashes += 1
                self.recorder.count(PARALLEL_WORKER_CRASHES)
                broken = True
                self._penalize(
                    unit,
                    "crash",
                    str(exc) or "worker process died",
                    queue,
                    outcome,
                )
            except OSError:
                raise
            except Exception as exc:
                self._raise_if_unshippable(exc)
                self._penalize(
                    unit, "error", f"{type(exc).__name__}: {exc}", queue, outcome
                )
            else:
                outcome.completed.append((unit.key, unit.items, result))
        finally:
            if broken:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True)

    # -- bookkeeping --------------------------------------------------------------

    def _penalize(
        self,
        unit: _Unit,
        kind: str,
        detail: str,
        queue: deque[_Unit],
        outcome: SupervisionOutcome,
    ) -> None:
        """Charge a failure to ``unit``: bisect it if it can be split,
        retry it if budget remains, quarantine it otherwise."""
        attempt = unit.attempt + 1
        outcome.failures.append(
            ShardFailure(kind=kind, items=len(unit.items), attempt=attempt, detail=detail)
        )
        if len(unit.items) > 1:
            outcome.retries += 1
            self.recorder.count(PARALLEL_SHARD_RETRIES)
            mid = (len(unit.items) + 1) // 2
            queue.append(_Unit(unit.key + (0,), unit.items[:mid], attempt))
            queue.append(_Unit(unit.key + (1,), unit.items[mid:], attempt))
        elif attempt > self.policy.max_retries:
            outcome.quarantined.append(unit.items)
        else:
            outcome.retries += 1
            self.recorder.count(PARALLEL_SHARD_RETRIES)
            queue.append(_Unit(unit.key, unit.items, attempt))

    def _abandon(
        self, queue: deque[_Unit], outcome: SupervisionOutcome, exc: OSError
    ) -> None:
        """No worker pool at all: everything outstanding degrades to the
        caller's serial path."""
        total = 0
        while queue:
            unit = queue.popleft()
            total += len(unit.items)
            outcome.quarantined.append(unit.items)
        outcome.failures.append(
            ShardFailure(
                kind="error",
                items=total,
                attempt=0,
                detail=f"no worker pool available: {exc}",
            )
        )

    def _raise_if_unshippable(self, exc: BaseException) -> None:
        if _pickling_failure(exc):
            raise ParallelError(
                "parallel payload cannot be shipped to worker processes "
                f"({type(exc).__name__}: {exc}); run with jobs=1 or make "
                "the model/policy/regions picklable"
            ) from exc
