"""Robustness: guarded scheduling, fault injection, typed errors.

The enforcement layer for the paper's safety claim. An executable
editor that reorders instructions must prove each edit safe or refuse
to make it; this package makes that a *runtime* property of the
production path, not a test-suite-only one:

* :class:`GuardedBlockScheduler` — verify-and-fallback around the block
  scheduler: every scheduled block is re-proven by
  :func:`~repro.core.verify.verify_schedule`; failures fall back to the
  original instruction order and are quarantined
  (:class:`QuarantineReport`), with budgets (:class:`GuardBudget`) for
  graceful degradation under instruction-count or wall-clock pressure.
* :mod:`repro.robust.faults` — a fault-injection harness that corrupts
  machine models, instruction encodings, and scheduler decisions, and
  asserts every injected fault is caught.
* :mod:`repro.robust.supervise` — worker supervision for the parallel
  scheduler: per-shard deadlines, crash/hang detection, bounded
  bisecting retry, and guaranteed degradation to the serial path.
* :mod:`repro.robust.chaos` — process-level chaos testing: worker
  crashes, hangs, corrupted IPC, torn ledger writes, and bit-flipped
  cache entries injected into live parallel runs, asserting containment
  and byte-identical output.
* the unified error taxonomy rooted at
  :class:`~repro.errors.ReproError` (re-exported here), so every layer
  fails with a typed, catchable error.

See ``docs/robustness.md``.
"""

from ..errors import BudgetExceeded, ParallelError, ReproError, VerificationError
from .faults import (
    MODEL_FAULTS,
    SCHEDULER_MUTATIONS,
    SYMBOLIC_MUTATIONS,
    ClobberingProfiler,
    CorruptedModel,
    FaultInjectionReport,
    FaultOutcome,
    ModelFault,
    SabotagedScheduler,
    default_workload,
    inject_cache_faults,
    inject_clobber_faults,
    inject_encoding_faults,
    inject_model_faults,
    inject_scheduler_faults,
    inject_superblock_faults,
    inject_symbolic_faults,
    run_fault_injection,
)
from .guard import GuardBudget, GuardedBlockScheduler, QuarantineReport
from .supervise import (
    ShardFailure,
    ShardSupervisor,
    SupervisionOutcome,
    SupervisionPolicy,
)

# Imported last: chaos drives repro.parallel, which imports this
# package's guard — by now both are resolvable from sys.modules.
from .chaos import CHAOS_FAULTS, ChaosOutcome, ChaosReport, run_chaos_suite

__all__ = [
    "BudgetExceeded",
    "CHAOS_FAULTS",
    "ChaosOutcome",
    "ChaosReport",
    "ClobberingProfiler",
    "CorruptedModel",
    "FaultInjectionReport",
    "FaultOutcome",
    "GuardBudget",
    "GuardedBlockScheduler",
    "MODEL_FAULTS",
    "ModelFault",
    "ParallelError",
    "QuarantineReport",
    "ReproError",
    "SCHEDULER_MUTATIONS",
    "SYMBOLIC_MUTATIONS",
    "SabotagedScheduler",
    "ShardFailure",
    "ShardSupervisor",
    "SupervisionOutcome",
    "SupervisionPolicy",
    "VerificationError",
    "default_workload",
    "inject_cache_faults",
    "inject_clobber_faults",
    "inject_encoding_faults",
    "inject_model_faults",
    "inject_scheduler_faults",
    "inject_superblock_faults",
    "inject_symbolic_faults",
    "run_chaos_suite",
    "run_fault_injection",
]
