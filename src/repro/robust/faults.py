"""Fault injection: prove the guards catch what they claim to catch.

The harness deliberately breaks each layer the guarded pipeline defends
and asserts the break is *caught* — a quarantine or a typed error, never
a silently wrong output:

* **model faults** (:data:`MODEL_FAULTS`) corrupt a machine model's
  timing traces — a write latency of zero, a read after retirement, a
  dropped ``release``, issue-slot acquires swapped onto the wrong unit,
  over-releases, capacity overflows. Every one must be flagged by
  :func:`~repro.spawn.validate.validate_machine` and must quarantine a
  :class:`~repro.robust.guard.GuardedBlockScheduler` at construction.
* **encoding faults** flip every bit of every instruction word of a
  real program. Each flip must either raise
  :class:`~repro.isa.decode.DecodeError` or decode to an instruction
  that re-encodes to exactly the flipped word (the change is visible in
  the IR). A flip that decodes but re-encodes differently is a *silent
  misdecode* — the paper's "dominant source of subtle bugs" — and
  counts as an escape.
* **scheduler faults** (:data:`SCHEDULER_MUTATIONS`) wrap the real
  scheduler in a :class:`SabotagedScheduler` that applies an illegal
  mutation (swapping a dependent pair, dropping or duplicating an
  instruction) to each block's schedule. Every sabotaged block must be
  quarantined by the guard's ``verify_schedule`` check.
* **symbolic-validator faults** (:func:`inject_symbolic_faults`) aim
  the same corruptions — plus block reversal and immediate tampering —
  at the static→symbolic proof chain instead of the dynamic guard. A
  corrupted block the chain calls *proven* is a false proof unless a
  differential battery confirms the corruption was semantically
  harmless; the must-catch bar is zero false proofs.
* **instrumentation faults** (:func:`inject_clobber_faults`) make the
  profiler deliberately pick *live* registers as counter scratch — the
  snippets corrupt program state, yet every block is a perfectly legal
  schedule, so the dynamic guard structurally cannot object. Only the
  whole-image static analysis (:func:`repro.analyze.lint_profiled`'s
  ``image/clobber-live-register`` rule) sees the clobber.
* **superblock faults** (:func:`inject_superblock_faults`) hand the
  superblock scheduler a corrupted liveness oracle that claims every
  register is dead at every side exit, provoking speculative hoists
  that clobber registers the side-exit target reads. Guarded
  verification recomputes liveness itself, so every unsafe hoist must
  fail the masked differential and quarantine the superblock.
* **cache faults** (:func:`inject_cache_faults`) attack the
  content-addressed schedule cache: entries warmed under a healthy
  model must be invisible to a corrupted variant (no stale masking), a
  deliberately wrong *unverified* entry planted under the live context
  must never be served by the guard, and blocks a sabotaged scheduler
  corrupts must leave no cache entry behind.

``python -m repro.tools.qpt_cli faults --machine ultrasparc`` runs the
whole catalog and exits nonzero if anything escapes; CI runs it against
the UltraSPARC model and a synthetic 4-wide machine.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from ..core.dependence import SchedulingPolicy, build_dependence_graph
from ..core.block_scheduler import BlockScheduler
from ..core.verify import DEFAULT_SEED
from ..eel.editor import Editor
from ..eel.executable import Executable
from ..isa.decode import DecodeError, decode
from ..isa.encode import encode
from ..isa.instruction import Instruction
from ..obs.recorder import NULL_RECORDER, Recorder
from ..sadl.trace import Trace, UnitEvent
from ..spawn.model import MachineModel
from ..spawn.validate import validate_machine
from .guard import GuardedBlockScheduler

# -- model corruption ------------------------------------------------------------


@dataclass(frozen=True)
class ModelFault:
    """One way to corrupt a machine description's timing traces."""

    name: str
    description: str
    corrupt: Callable[[Trace, MachineModel], Trace]


def _copy_trace(trace: Trace) -> Trace:
    return Trace(
        acquires=list(trace.acquires),
        releases=list(trace.releases),
        reads=list(trace.reads),
        writes=list(trace.writes),
        flags=set(trace.flags),
        cycles=trace.cycles,
    )


def _fault_write_latency_zero(trace: Trace, model: MachineModel) -> Trace:
    trace.writes = [
        type(a)(a.file, a.index, 0, a.width) for a in trace.writes
    ]
    return trace


def _fault_read_after_retire(trace: Trace, model: MachineModel) -> Trace:
    trace.reads = [
        type(a)(a.file, a.index, trace.cycles + 1, a.width) for a in trace.reads
    ]
    return trace


def _fault_dropped_release(trace: Trace, model: MachineModel) -> Trace:
    trace.releases = []
    return trace


def _fault_swapped_units(trace: Trace, model: MachineModel) -> Trace:
    other = next((u for u in sorted(model.units) if u != "Group"), None)
    if other is None:
        return trace

    def swap(event: UnitEvent) -> UnitEvent:
        if event.unit == "Group":
            return UnitEvent(other, event.count, event.cycle)
        if event.unit == other:
            return UnitEvent("Group", event.count, event.cycle)
        return event

    trace.acquires = [swap(e) for e in trace.acquires]
    trace.releases = [swap(e) for e in trace.releases]
    return trace


def _fault_over_release(trace: Trace, model: MachineModel) -> Trace:
    if trace.releases:
        first = trace.releases[0]
        trace.releases = list(trace.releases) + [
            UnitEvent(first.unit, first.count + 1, first.cycle)
        ]
    return trace


def _fault_capacity_overflow(trace: Trace, model: MachineModel) -> Trace:
    if trace.acquires:
        first = trace.acquires[0]
        capacity = model.units.get(first.unit, 1)
        trace.acquires = [UnitEvent(first.unit, capacity + 1, first.cycle)] + list(
            trace.acquires[1:]
        )
    return trace


#: The model-corruption catalog: every entry must be caught by
#: ``validate_machine`` (and therefore quarantine a guard at init).
MODEL_FAULTS: tuple[ModelFault, ...] = (
    ModelFault(
        "write-latency-zero",
        "every write's value usable in cycle 0 (impossible forwarding)",
        _fault_write_latency_zero,
    ),
    ModelFault(
        "read-after-retire",
        "every register read moved past the end of the pipeline",
        _fault_read_after_retire,
    ),
    ModelFault(
        "dropped-release",
        "all unit releases removed: capacity leaks until deadlock",
        _fault_dropped_release,
    ),
    ModelFault(
        "swapped-units",
        "issue-slot ('Group') events swapped with another unit",
        _fault_swapped_units,
    ),
    ModelFault(
        "over-release",
        "a unit released more times than it was acquired",
        _fault_over_release,
    ),
    ModelFault(
        "capacity-overflow",
        "an acquire demands more copies of a unit than the machine has",
        _fault_capacity_overflow,
    ),
)


class CorruptedModel:
    """A machine model with a :class:`ModelFault` applied to every trace.

    Duck-types the :class:`~repro.spawn.model.MachineModel` surface that
    ``validate_machine`` and the schedulers use; everything it does not
    override delegates to the base model.
    """

    def __init__(self, base: MachineModel, fault: ModelFault) -> None:
        self._base = base
        self.fault = fault
        self.name = f"{base.name}+{fault.name}"

    def __getattr__(self, attr: str):
        return getattr(self._base, attr)

    def _variant(self, mnemonic: str, uses_imm: bool):
        group, trace = self._base._variant(mnemonic, uses_imm)
        corrupted = self.fault.corrupt(_copy_trace(trace), self._base)
        # Re-run the build-time capacity check on the corrupted trace so
        # capacity faults surface as ModelError, exactly as they would
        # had the description itself been wrong.
        self._base._validate(mnemonic, corrupted)
        return group, corrupted


# -- scheduler sabotage ----------------------------------------------------------


def _mutate_swap_dependent(
    scheduled: list[Instruction], policy: SchedulingPolicy
) -> list[Instruction] | None:
    graph = build_dependence_graph(scheduled, policy)
    for src in range(graph.size):
        for dst in sorted(graph.succs[src]):
            if str(scheduled[src]) != str(scheduled[dst]):
                out = list(scheduled)
                out[src], out[dst] = out[dst], out[src]
                return out
    return None


def _mutate_drop_last(
    scheduled: list[Instruction], policy: SchedulingPolicy
) -> list[Instruction] | None:
    return scheduled[:-1] if scheduled else None


def _mutate_duplicate_first(
    scheduled: list[Instruction], policy: SchedulingPolicy
) -> list[Instruction] | None:
    return [scheduled[0]] + list(scheduled) if scheduled else None


#: Illegal post-schedule mutations; each returns None when a block
#: offers no opportunity to apply it.
SCHEDULER_MUTATIONS: dict[str, Callable] = {
    "swap-dependent-pair": _mutate_swap_dependent,
    "drop-instruction": _mutate_drop_last,
    "duplicate-instruction": _mutate_duplicate_first,
}


class SabotagedScheduler(BlockScheduler):
    """A deliberately buggy scheduler: schedules correctly, then applies
    an illegal mutation — the guard must refuse every mutated block."""

    def __init__(
        self,
        model: MachineModel,
        policy: SchedulingPolicy | None = None,
        recorder: Recorder | None = None,
        *,
        mutation: str = "swap-dependent-pair",
    ) -> None:
        super().__init__(model, policy, recorder)
        if mutation not in SCHEDULER_MUTATIONS:
            raise ValueError(
                f"unknown mutation {mutation!r}; choose from "
                f"{sorted(SCHEDULER_MUTATIONS)}"
            )
        self.mutation = mutation
        self.mutations_applied = 0

    def schedule_body(self, body: list[Instruction]) -> list[Instruction]:
        scheduled = super().schedule_body(body)
        mutated = SCHEDULER_MUTATIONS[self.mutation](scheduled, self.policy)
        if mutated is None:
            return scheduled
        self.mutations_applied += 1
        return mutated


# -- outcomes --------------------------------------------------------------------


@dataclass(frozen=True)
class FaultOutcome:
    """Result of injecting one fault class."""

    fault: str
    #: 'model' | 'encoding' | 'scheduler' | 'cache' | 'superblock'
    layer: str
    injected: int
    caught: int
    details: tuple[str, ...] = ()

    @property
    def escaped(self) -> int:
        return self.injected - self.caught


@dataclass
class FaultInjectionReport:
    machine: str
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(o.injected for o in self.outcomes)

    @property
    def escaped(self) -> int:
        return sum(o.escaped for o in self.outcomes)

    @property
    def clean(self) -> bool:
        """True when every injected fault was caught — and faults were
        actually injected (an empty run proves nothing)."""
        return self.injected > 0 and self.escaped == 0

    def render(self) -> str:
        lines = [f"fault injection against {self.machine}:"]
        width = max(len(o.fault) for o in self.outcomes) if self.outcomes else 8
        for o in self.outcomes:
            status = "ok" if o.escaped == 0 else f"ESCAPED {o.escaped}"
            lines.append(
                f"  {o.layer:<9} {o.fault:<{width}}  "
                f"injected {o.injected:>5}  caught {o.caught:>5}  {status}"
            )
            for detail in o.details[:2]:
                lines.append(f"            {detail}")
        verdict = (
            "all injected faults caught"
            if self.clean
            else f"{self.escaped} of {self.injected} faults ESCAPED the guards"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


# -- the harness -----------------------------------------------------------------


def default_workload() -> Executable:
    """A small mixed workload for the encoding/scheduler fault classes."""
    from ..workloads import sum_loop

    return sum_loop(12).executable


def inject_model_faults(
    model: MachineModel, faults: tuple[ModelFault, ...] = MODEL_FAULTS
) -> list[FaultOutcome]:
    outcomes = []
    for fault in faults:
        corrupted = CorruptedModel(model, fault)
        findings = validate_machine(corrupted, require_full_isa=False)
        errors = [f for f in findings if f.severity == "error"]
        guard = GuardedBlockScheduler(corrupted, validate_model=True)
        guarded = any(q.kind == "model" for q in guard.quarantine)
        caught = 1 if (errors and guarded) else 0
        outcomes.append(
            FaultOutcome(
                fault=fault.name,
                layer="model",
                injected=1,
                caught=caught,
                details=(str(errors[0]),) if errors else ("no finding",),
            )
        )
    return outcomes


def inject_encoding_faults(executable: Executable) -> FaultOutcome:
    """Flip every bit of every text word; count silent misdecodes."""
    data = executable.text_section().data
    injected = caught = 0
    details: list[str] = []
    for (word,) in struct.iter_unpack(">I", data):
        for bit in range(32):
            corrupted = word ^ (1 << bit)
            injected += 1
            try:
                inst = decode(corrupted)
            except DecodeError:
                caught += 1
                continue
            if encode(inst) == corrupted:
                caught += 1  # faithful decode: the fault is visible in the IR
            elif len(details) < 4:
                details.append(
                    f"silent misdecode {corrupted:#010x} -> {inst!s}"
                )
    return FaultOutcome(
        fault="bit-flip",
        layer="encoding",
        injected=injected,
        caught=caught,
        details=tuple(details),
    )


def inject_scheduler_faults(
    model: MachineModel,
    executable: Executable,
    *,
    policy: SchedulingPolicy | None = None,
    recorder: Recorder | None = None,
    verify_trials: int = 2,
    verify_seed: int = DEFAULT_SEED,
) -> list[FaultOutcome]:
    outcomes = []
    rec = recorder if recorder is not None else NULL_RECORDER
    for name in SCHEDULER_MUTATIONS:
        inner = SabotagedScheduler(model, policy, rec, mutation=name)
        guard = GuardedBlockScheduler(
            model,
            policy,
            rec,
            inner=inner,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
            validate_model=False,
        )
        Editor(executable, recorder=rec).build(guard)
        # Only ReproError-rooted failures count as caught: an untyped
        # crash was merely contained, not diagnosed (q.typed is False
        # exactly when a scheduler-error quarantine wrapped a bare
        # exception).
        caught = sum(
            1
            for q in guard.quarantine
            if q.kind == "verification"
            or (q.kind == "scheduler-error" and q.typed)
        )
        outcomes.append(
            FaultOutcome(
                fault=name,
                layer="scheduler",
                injected=inner.mutations_applied,
                caught=min(caught, inner.mutations_applied),
                details=tuple(str(q) for q in guard.quarantine[:1]),
            )
        )
    return outcomes


def _mutate_reverse(
    scheduled: list[Instruction], policy: SchedulingPolicy
) -> list[Instruction] | None:
    out = list(reversed(scheduled))
    if [str(i) for i in out] == [str(i) for i in scheduled]:
        return None
    return out


def _mutate_tamper_immediate(
    scheduled: list[Instruction], policy: SchedulingPolicy
) -> list[Instruction] | None:
    from dataclasses import replace

    for index, inst in enumerate(scheduled):
        if inst.imm is not None and inst.memory is None and not inst.is_control:
            out = list(scheduled)
            out[index] = replace(inst, imm=inst.imm ^ 1)
            return out
    return None


#: Corruptions aimed at the static→symbolic proof chain. The bool says
#: whether the chain may use its structural (permutation + DAG) gates:
#: immediate tampering runs with them disabled, forcing the *semantic*
#: term comparison to notice the changed constant on its own.
SYMBOLIC_MUTATIONS: dict[str, tuple[Callable, bool]] = {
    "swap-dependent-pair": (_mutate_swap_dependent, True),
    "drop-instruction": (_mutate_drop_last, True),
    "duplicate-instruction": (_mutate_duplicate_first, True),
    "reverse-block": (_mutate_reverse, True),
    "tamper-immediate": (_mutate_tamper_immediate, False),
}


def inject_symbolic_faults(
    model: MachineModel,
    executable: Executable,
    *,
    policy: SchedulingPolicy | None = None,
    verify_trials: int = 4,
    verify_seed: int = DEFAULT_SEED,
) -> list[FaultOutcome]:
    """``symbolic-false-proof``: corrupt real schedules and demand the
    static→symbolic chain never calls a corrupted block proven.

    One exception is legitimate: a corruption the differential battery
    itself cannot distinguish from the original (a reversal of fully
    independent instructions, say) is semantically harmless, and proving
    it is correct behavior — so a surviving proof only counts as an
    escape when differential execution confirms actual divergence."""
    from ..analyze import static_verify_schedule, symbolic_verify_schedule
    from ..core.verify import verify_schedule
    from ..eel.cfg import build_cfg
    from ..errors import ReproError

    policy = policy or SchedulingPolicy()
    scheduler = BlockScheduler(model, policy)
    outcomes: list[FaultOutcome] = []
    for name, (mutate, structural) in SYMBOLIC_MUTATIONS.items():
        injected = caught = 0
        details: list[str] = []
        for block in build_cfg(executable):
            body = list(block.body)
            if len(body) < 2:
                continue
            scheduled = scheduler.schedule_body(body)
            mutated = mutate(scheduled, policy)
            if mutated is None or [str(i) for i in mutated] == [
                str(i) for i in scheduled
            ]:
                continue
            injected += 1
            static_proven = False
            if structural:
                static = static_verify_schedule(body, mutated, policy=policy)
                if static.refuted:
                    caught += 1
                    continue
                static_proven = static.proven
            if static_proven:
                proven = True
            else:
                verdict = symbolic_verify_schedule(
                    body,
                    mutated,
                    policy=policy,
                    check_structure=structural,
                    seed=verify_seed,
                )
                proven = verdict.proven
            if not proven:
                caught += 1
                continue
            # The corrupted block was proven: acceptable only when the
            # battery agrees the corruption changed nothing observable.
            try:
                harmless = verify_schedule(
                    body,
                    mutated,
                    policy=policy,
                    trials=verify_trials,
                    seed=verify_seed,
                ).ok
            except ReproError:
                # Both orders fault identically on the battery's inputs
                # (the proof covered the trap); nothing divergent ran.
                harmless = True
                if len(details) < 2:
                    details.append(
                        f"block {block.index}: differential battery faulted "
                        "on both orders; proof stands"
                    )
            if harmless:
                caught += 1
            elif len(details) < 2:
                details.append(
                    f"block {block.index}: {name} proven but differential "
                    "execution diverges — a false proof"
                )
        outcomes.append(
            FaultOutcome(
                fault=f"false-proof-{name}",
                layer="analyze",
                injected=injected,
                caught=caught,
                details=tuple(details),
            )
        )
    return outcomes


class ClobberingProfiler:
    """A QPT profiler that deliberately picks *live* registers as counter
    scratch — the snippet corruption fault class.

    Wraps :class:`~repro.qpt.profiling.SlowProfiler` (composition, so
    the import stays lazy) and overrides its scratch choice: instead of
    provably dead registers it picks registers the block's own original
    code still reads. Every block stays a legal schedule, so the guard
    verifies it happily; ``corrupted`` records the block indexes whose
    snippets clobber live state.
    """

    def __init__(self, executable: Executable, *, recorder: Recorder | None = None):
        from ..qpt.profiling import SlowProfiler

        outer = self

        class _Profiler(SlowProfiler):
            def _pick_scratch(self, liveness, block):
                regs = outer._live_scratch(block)
                if regs is None:
                    return super()._pick_scratch(liveness, block)
                outer.corrupted.add(block.index)
                return regs

        self._profiler = _Profiler(executable, recorder=recorder)
        #: block indexes whose counter snippets clobber live registers.
        self.corrupted: set[int] = set()

    def instrument(self, transform=None):
        return self._profiler.instrument(transform)

    @staticmethod
    def _live_scratch(block):
        """Two upward-exposed integer registers of ``block`` (read by the
        original body before any redefinition), or None when the block
        offers none. Upward-exposed regs are live at the insertion point
        by construction."""
        from ..analyze.image_rules import RESERVED_SCRATCH as ABI_SCRATCH
        from ..isa.registers import RegKind

        exposed = []
        written = set()
        for inst in block.body:
            for reg in sorted(inst.regs_read()):
                if (
                    reg.kind is RegKind.INT
                    and reg not in written
                    and reg not in ABI_SCRATCH
                    and reg not in exposed
                ):
                    exposed.append(reg)
            written |= inst.regs_written()
        if not exposed:
            return None
        return (exposed[0], exposed[1] if len(exposed) > 1 else exposed[0])


def inject_clobber_faults(
    model: MachineModel,
    executable: Executable,
    *,
    policy: SchedulingPolicy | None = None,
    recorder: Recorder | None = None,
    verify_trials: int = 2,
    verify_seed: int = DEFAULT_SEED,
) -> FaultOutcome:
    """Instrument with live-register scratch; the static image analysis
    must flag every corrupted block (the dynamic guard cannot)."""
    from ..analyze import lint_profiled

    rec = recorder if recorder is not None else NULL_RECORDER
    profiler = ClobberingProfiler(executable, recorder=rec)
    guard = GuardedBlockScheduler(
        model,
        policy,
        rec,
        verify_trials=verify_trials,
        verify_seed=verify_seed,
        validate_model=False,
    )
    profiled = profiler.instrument(guard)
    flagged = {
        finding.location.block
        for finding in lint_profiled(profiled, model)
        if finding.rule == "image/clobber-live-register"
    }
    caught = len(profiler.corrupted & flagged)
    details = []
    if guard.quarantine:
        details.append(
            "unexpected quarantine: the clobber class should be invisible "
            "to the dynamic guard"
        )
    missed = sorted(profiler.corrupted - flagged)
    if missed:
        details.append(f"blocks {missed} clobber live registers unflagged")
    return FaultOutcome(
        fault="clobber-live-register",
        layer="instrumentation",
        injected=len(profiler.corrupted),
        caught=caught,
        details=tuple(details),
    )


def inject_cache_faults(
    model: MachineModel,
    executable: Executable,
    *,
    policy: SchedulingPolicy | None = None,
    recorder: Recorder | None = None,
    verify_trials: int = 2,
    verify_seed: int = DEFAULT_SEED,
    jobs: int = 1,
) -> list[FaultOutcome]:
    """Attack the schedule cache; every attack must be neutralized.

    ``jobs > 1`` routes the poisoned-cache build through the parallel
    executor, proving worker pre-scheduling cannot resurrect a bad
    entry either.
    """
    # Imported lazily: repro.parallel imports this package's guard.
    from ..core.list_scheduler import ScheduleResult
    from ..core.regions import split_regions
    from ..eel.cfg import build_cfg
    from ..parallel.cache import ScheduleCache
    from ..parallel.executor import ParallelOptions, make_transform

    rec = recorder if recorder is not None else NULL_RECORDER
    policy = policy or SchedulingPolicy()
    outcomes: list[FaultOutcome] = []

    def guard(inner=None, cache=None):
        return GuardedBlockScheduler(
            model,
            policy,
            rec,
            inner=inner,
            cache=cache,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
            validate_model=False,
        )

    def text(edited: Executable) -> bytes:
        return bytes(edited.text_section().data)

    reference = text(Editor(executable, recorder=rec).build(guard()))

    # 1. Stale-model-entry: warm the cache under the healthy model, then
    # corrupt the model. Context digests must separate the two — a
    # corrupted model served stale healthy-model schedules (or vice
    # versa) would time and verify against the wrong machine.
    cache = ScheduleCache()
    Editor(executable, recorder=rec).build(guard(cache=cache))
    healthy_context = cache.context_for(model, policy)
    sample = next(
        (
            list(region.instructions)
            for block in build_cfg(executable)
            for region in split_regions(list(block.body))
            if region.instructions
        ),
        None,
    )
    injected = caught = 0
    details: list[str] = []
    for fault in MODEL_FAULTS:
        corrupted = CorruptedModel(model, fault)
        injected += 1
        context = cache.context_for(corrupted, policy)
        visible = sample is not None and cache.lookup(context, sample) is not None
        if context != healthy_context and not visible:
            caught += 1
        elif len(details) < 2:
            details.append(
                f"{fault.name}: healthy-model entries visible under the "
                "corrupted model"
            )
    outcomes.append(
        FaultOutcome(
            fault="stale-model-entry",
            layer="cache",
            injected=injected,
            caught=caught,
            details=tuple(details),
        )
    )

    # 2. Poisoned-unverified-entry: plant wrong, unverified schedules
    # under the live context. The guard must treat them as misses and
    # re-prove every region; output must match the clean reference.
    poisoned = ScheduleCache()
    context = poisoned.context_for(model, policy)
    injected = 0
    for block in build_cfg(executable):
        for region in split_regions(list(block.body)):
            instructions = list(region.instructions)
            if len(instructions) < 2:
                continue
            reversed_order = list(range(len(instructions)))[::-1]
            poisoned.insert(
                context,
                instructions,
                ScheduleResult(
                    instructions=[instructions[i] for i in reversed_order],
                    order=reversed_order,
                    original_cycles=1,
                    scheduled_cycles=0,
                ),
                verified=False,
            )
            injected += 1
    transform = make_transform(
        model,
        policy,
        rec,
        options=ParallelOptions(jobs=jobs),
        cache=poisoned,
        guarded=True,
        verify_trials=verify_trials,
        verify_seed=verify_seed,
    )
    served_poison = text(Editor(executable, recorder=rec).build(transform)) != reference
    outcomes.append(
        FaultOutcome(
            fault="poisoned-unverified-entry",
            layer="cache",
            injected=injected,
            caught=0 if served_poison else injected,
            details=("guard emitted a poisoned schedule",) if served_poison else (),
        )
    )

    # 3. Sabotage-never-cached: a sabotaged scheduler's quarantined
    # blocks must leave nothing behind — only verified entries may
    # exist afterwards, and a rebuild served from them must be clean.
    injected = caught = 0
    details = []
    for name in SCHEDULER_MUTATIONS:
        cache = ScheduleCache()
        inner = SabotagedScheduler(model, policy, rec, mutation=name)
        Editor(executable, recorder=rec).build(guard(inner=inner, cache=cache))
        injected += inner.mutations_applied
        rebuilt = text(Editor(executable, recorder=rec).build(guard(cache=cache)))
        clean = (
            cache.verified_entries() == len(cache) and rebuilt == reference
        )
        if clean:
            caught += inner.mutations_applied
        elif len(details) < 2:
            details.append(f"{name}: a mutated schedule leaked into the cache")
    outcomes.append(
        FaultOutcome(
            fault="sabotage-never-cached",
            layer="cache",
            injected=injected,
            caught=caught,
            details=tuple(details),
        )
    )
    return outcomes


# -- superblock faults ------------------------------------------------------------


class _DeadLivenessOracle:
    """A corrupted liveness analysis that swears every register is dead.

    Fed to :class:`~repro.core.superblock.SuperblockScheduler` as its
    ``liveness_factory``, it approves every speculative hoist — including
    ones that clobber registers the side-exit target actually reads."""

    def __init__(self, cfg) -> None:
        self.cfg = cfg

    def live_in(self, index: int) -> frozenset:
        return frozenset()


def _speculation_workload() -> Executable:
    """A three-block fall-through chain with two live side exits.

    Each boundary's successor leads with an ALU instruction that writes
    a register the side-exit target reads (``%o2`` at ``side1``, ``%o4``
    at ``side2``) — exactly the hoist an honest liveness oracle forbids
    and a corrupted one approves. Every instruction above each branch
    feeds its condition, so nothing can *sink* across the boundary and
    the planner is forced onto the speculative-hoist path."""
    from ..eel.executable import TEXT_BASE
    from ..isa.asm import Assembler

    source = """
            set 1, %o2
            set 2, %o4
            add %o2, %o4, %o5
            subcc %o5, 7, %g0
            be side1
            nop
            add %o2, 3, %o2
            subcc %o4, 9, %g0
            be side2
            nop
            add %o4, 5, %o4
            add %o1, 1, %o1
            retl
            nop
        side1:
            add %o2, 0, %o3
            retl
            nop
        side2:
            add %o4, 0, %o5
            retl
            nop
    """
    program = Assembler(base_address=TEXT_BASE).assemble(source)
    return Executable.from_instructions(program, text_base=TEXT_BASE)


def inject_superblock_faults(
    model: MachineModel,
    *,
    policy: SchedulingPolicy | None = None,
    recorder: Recorder | None = None,
    verify_trials: int = 2,
    verify_seed: int = DEFAULT_SEED,
) -> FaultOutcome:
    """``corrupt-side-exit-liveness``: hand the superblock scheduler a
    lying liveness oracle and let it speculatively hoist instructions
    that clobber registers live at a side exit. The oracle feeds only
    the speculation *gate*; guarded verification recomputes liveness
    itself, so every unsafe hoist must die in the masked differential
    and quarantine the superblock."""
    from ..core.superblock import SuperblockConfig, SuperblockScheduler
    from ..eel.cfg import build_cfg
    from ..eel.liveness import LivenessAnalysis

    policy = policy or SchedulingPolicy()
    rec = recorder if recorder is not None else NULL_RECORDER
    executable = _speculation_workload()

    scheduler = SuperblockScheduler(
        model,
        policy,
        rec,
        config=SuperblockConfig(speculate=True),
        guarded=True,
        verify_trials=verify_trials,
        verify_seed=verify_seed,
        liveness_factory=_DeadLivenessOracle,
    )
    Editor(executable, recorder=rec).build(scheduler)

    honest = LivenessAnalysis(build_cfg(executable))
    unsafe = [
        record
        for record in scheduler.speculated
        if any(
            inst.regs_written() & honest.live_in(record.exit_block)
            for inst in record.instructions
        )
    ]
    injected = len(unsafe)
    quarantined = [
        q for q in scheduler.quarantine if q.kind == "superblock-verification"
    ]
    details = []
    if injected == 0:
        details.append(
            "the corrupted oracle provoked no unsafe hoists — workload drift?"
        )
    # Caught means the whole poisoned plan was quarantined and nothing
    # committed: no unsafe hoist can reach the output executable.
    caught = injected if quarantined and scheduler.formed == 0 else 0
    if injected and not caught and len(details) < 2:
        details.append(
            f"{scheduler.formed} superblock(s) committed despite "
            f"{injected} unsafe hoist(s); quarantines: {len(quarantined)}"
        )
    return FaultOutcome(
        fault="corrupt-side-exit-liveness",
        layer="superblock",
        injected=injected,
        caught=caught,
        details=tuple(details),
    )


def run_fault_injection(
    model: MachineModel,
    *,
    executable: Executable | None = None,
    policy: SchedulingPolicy | None = None,
    recorder: Recorder | None = None,
    verify_trials: int = 2,
    verify_seed: int = DEFAULT_SEED,
    jobs: int = 1,
    chaos: bool = False,
    chaos_only: tuple[str, ...] | None = None,
    chaos_workdir: "str | None" = None,
) -> FaultInjectionReport:
    """Run the whole catalog against ``model``; see the module docstring.

    ``jobs`` routes the cache fault class through the parallel executor
    as well, covering the cached+parallel production path. ``chaos``
    appends the process-level chaos classes
    (:func:`~repro.robust.chaos.run_chaos_suite`: worker crashes,
    hangs, corrupted IPC, torn ledger writes, bit-flipped cache
    entries) to the same report; ``chaos_only`` restricts the chaos
    pass to the named fault classes and ``chaos_workdir`` pins its
    scratch directory (both forwarded verbatim).
    """
    if executable is None:
        executable = default_workload()
    report = FaultInjectionReport(machine=model.name)
    report.outcomes.extend(inject_model_faults(model))
    report.outcomes.append(inject_encoding_faults(executable))
    report.outcomes.extend(
        inject_scheduler_faults(
            model,
            executable,
            policy=policy,
            recorder=recorder,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
        )
    )
    report.outcomes.extend(
        inject_symbolic_faults(
            model,
            executable,
            policy=policy,
            verify_trials=max(verify_trials, 4),
            verify_seed=verify_seed,
        )
    )
    report.outcomes.append(
        inject_clobber_faults(
            model,
            executable,
            policy=policy,
            recorder=recorder,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
        )
    )
    report.outcomes.extend(
        inject_cache_faults(
            model,
            executable,
            policy=policy,
            recorder=recorder,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
            jobs=jobs,
        )
    )
    report.outcomes.append(
        inject_superblock_faults(
            model,
            policy=policy,
            recorder=recorder,
            verify_trials=verify_trials,
            verify_seed=verify_seed,
        )
    )
    if chaos:
        # Imported lazily: chaos drives repro.parallel, which imports
        # this package.
        from .chaos import run_chaos_suite

        chaos_report = run_chaos_suite(
            model,
            policy=policy,
            jobs=max(jobs, 2),
            verify_seed=verify_seed,
            only=chaos_only,
            workdir=chaos_workdir,
        )
        for outcome in chaos_report.outcomes:
            details = list(outcome.details)
            if not outcome.byte_identical:
                details.append(
                    "faulted build bytes diverged from the clean serial run"
                )
            report.outcomes.append(
                FaultOutcome(
                    fault=outcome.fault,
                    layer=f"chaos-{outcome.layer}",
                    injected=outcome.injected,
                    caught=outcome.contained if outcome.byte_identical else 0,
                    details=tuple(details),
                )
            )
    return report
