"""Fast (edge) profiling — Ball–Larus optimal counter placement.

This paper's instrumentation workload is QPT2's *slow* profiling: a
counter in (almost) every block. QPT's celebrated mode — "Optimally
Profiling and Tracing Programs" [2] — counts *edges*, and only the
edges off a maximum spanning tree of the flow graph; every other edge
and block count follows from flow conservation. Fewer, colder counters:
cheaper profiles with strictly more information (edge frequencies).

Per routine, we:

1. form the flow graph: the routine's blocks, a virtual EXIT node fed
   by its return blocks, and a virtual EXIT→ENTRY edge closing the
   circulation;
2. build a maximum spanning tree, weighting edges by loop depth so hot
   edges stay *un*instrumented (virtual edges are forced into the tree
   — they cannot hold a counter);
3. instrument each non-tree CFG edge with the 4-instruction counter
   sequence via :meth:`repro.eel.editor.Editor.instrument_edge`
   (trampolines for taken edges, inline blocks for fall-throughs);
4. after a run, solve the tree-edge counts by leaf elimination over the
   flow-conservation equations, then report exact edge *and* block
   counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eel.cfg import CFG, Edge
from ..eel.editor import Editor
from ..eel.executable import Executable
from ..eel.loops import LoopForest
from ..eel.routine import split_routines
from ..isa.simulator import RunResult
from .counters import COUNTER_BASE, CounterSegment
from .profiling import RESERVED_SCRATCH, counter_snippet
from ..errors import ReproError

#: Node id for a routine's virtual exit.
_EXIT = -1


@dataclass(frozen=True)
class FlowEdge:
    """One edge of the profiling flow graph.

    Kinds: the CFG's ``taken``/``fallthrough``; ``exit`` for a return
    block's edge to the routine's virtual EXIT (instrumentable — the
    counter goes at the end of the returning block); ``virtual`` for
    the unique EXIT→ENTRY circulation edge, which can never hold a
    counter and is always forced onto the spanning tree.
    """

    src: int  # block index, or _EXIT
    dst: int
    kind: str  # 'taken' | 'fallthrough' | 'exit' | 'virtual'

    @property
    def is_virtual(self) -> bool:
        return self.kind == "virtual"

    @property
    def is_exit(self) -> bool:
        return self.kind == "exit"

    def cfg_edge(self) -> Edge:
        return Edge(self.src, self.dst, self.kind)


class FastProfileError(ReproError):
    pass


@dataclass
class _RoutinePlan:
    name: str
    entry: int
    edges: list[FlowEdge] = field(default_factory=list)
    tree: set[FlowEdge] = field(default_factory=set)

    @property
    def instrumented(self) -> list[FlowEdge]:
        return [e for e in self.edges if e not in self.tree]


@dataclass
class FastProfiledProgram:
    original: Executable
    executable: Executable
    cfg: CFG
    counters: CounterSegment
    plans: list[_RoutinePlan]
    #: instrumented flow edge -> counter address.
    counter_of: dict[FlowEdge, int]

    @property
    def counters_used(self) -> int:
        return len(self.counter_of)

    def run(self, **kwargs) -> RunResult:
        return self.executable.run(**kwargs)

    # -- count recovery ---------------------------------------------------

    def edge_counts(self, result: RunResult) -> dict[FlowEdge, int]:
        """Exact counts for *every* flow edge, measured or derived."""
        measured = {
            edge: result.state.memory.read_word(address)
            for edge, address in self.counter_of.items()
        }
        counts: dict[FlowEdge, int] = dict(measured)
        for plan in self.plans:
            self._solve_routine(plan, counts)
        return counts

    def block_counts(self, result: RunResult) -> dict[int, int]:
        """Execution counts for every block, from the edge counts."""
        edges = self.edge_counts(result)
        totals: dict[int, int] = {}
        for plan in self.plans:
            for edge in plan.edges:
                if edge.dst != _EXIT:
                    totals[edge.dst] = totals.get(edge.dst, 0) + edges[edge]
        return totals

    def _solve_routine(self, plan: _RoutinePlan, counts: dict[FlowEdge, int]) -> None:
        unknown = {e for e in plan.tree if e not in counts}
        incident: dict[int, list[FlowEdge]] = {}
        for edge in plan.edges:
            incident.setdefault(edge.src, []).append(edge)
            incident.setdefault(edge.dst, []).append(edge)

        progress = True
        while unknown and progress:
            progress = False
            for node, node_edges in incident.items():
                pending = [e for e in node_edges if e in unknown]
                if len(pending) != 1:
                    continue
                edge = pending[0]
                inflow = sum(
                    counts[e] for e in node_edges if e.dst == node and e not in unknown
                )
                outflow = sum(
                    counts[e] for e in node_edges if e.src == node and e not in unknown
                )
                counts[edge] = inflow - outflow if edge.src == node else outflow - inflow
                unknown.discard(edge)
                progress = True
        if unknown:  # pragma: no cover - spanning tree guarantees solvability
            raise FastProfileError(
                f"routine {plan.name!r}: unsolvable tree edges {unknown}"
            )


class FastProfiler:
    """Ball–Larus edge profiling over EEL."""

    def __init__(
        self, executable: Executable, *, counter_base: int = COUNTER_BASE
    ) -> None:
        self.executable = executable
        self.counter_base = counter_base

    def instrument(self, transform=None) -> FastProfiledProgram:
        editor = Editor(self.executable)
        cfg = editor.cfg
        loops = LoopForest(cfg)
        counters = CounterSegment(base=self.counter_base)
        counter_of: dict[FlowEdge, int] = {}
        plans = []

        for routine in split_routines(self.executable, cfg):
            plan = self._plan_routine(cfg, loops, routine)
            plans.append(plan)
            for edge in plan.instrumented:
                address = counters.allocate(len(counter_of))
                counter_of[edge] = address
                snippet = counter_snippet(address, *RESERVED_SCRATCH)
                if edge.is_exit:
                    editor.insert_at_end(edge.src, snippet)
                else:
                    editor.instrument_edge(edge.cfg_edge(), snippet)

        editor.add_data_section(counters.section(".qpt_edge_counters"))
        edited = editor.build(transform)
        return FastProfiledProgram(
            original=self.executable,
            executable=edited,
            cfg=cfg,
            counters=counters,
            plans=plans,
            counter_of=counter_of,
        )

    def _plan_routine(self, cfg: CFG, loops: LoopForest, routine) -> _RoutinePlan:
        inside = routine.block_indexes
        plan = _RoutinePlan(name=routine.name, entry=routine.entry_block().index)

        for block in routine.blocks:
            for edge in block.succs:
                if edge.dst not in inside:
                    raise FastProfileError(
                        f"routine {routine.name!r} has a cross-routine edge "
                        f"{edge.src}->{edge.dst} (tail call?); fast "
                        "profiling requires routine-closed control flow"
                    )
                plan.edges.append(FlowEdge(edge.src, edge.dst, edge.kind))
            if not block.succs:
                plan.edges.append(FlowEdge(block.index, _EXIT, "exit"))
        plan.edges.append(FlowEdge(_EXIT, plan.entry, "virtual"))

        plan.tree = self._max_spanning_tree(plan.edges, loops)
        return plan

    def _max_spanning_tree(
        self, edges: list[FlowEdge], loops: LoopForest
    ) -> set[FlowEdge]:
        def weight(edge: FlowEdge) -> float:
            if edge.is_virtual:
                return float("inf")  # never instrumentable
            depth = max(
                loops.depth(edge.src) if edge.src >= 0 else 0,
                loops.depth(edge.dst) if edge.dst >= 0 else 0,
            )
            # Prefer keeping back edges (the hottest edges of all) on
            # the tree: counters land on the colder forward edges.
            if 0 <= edge.dst <= edge.src:
                depth += 0.5
            return float(depth)

        parent: dict[int, int] = {}

        def find(x: int) -> int:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        tree: set[FlowEdge] = set()
        for edge in sorted(
            edges, key=lambda e: (-weight(e), e.src, e.dst, e.kind)
        ):
            a, b = find(edge.src), find(edge.dst)
            if a != b:
                parent[a] = b
                tree.add(edge)
        return tree
