"""Profile reports — turning raw counters into what users read.

``qpt`` historically post-processed counter files into listings of hot
basic blocks and procedures. :func:`profile_report` renders one from a
:class:`~repro.qpt.profiling.ProfiledProgram` and a run: hottest blocks
with their share of dynamic instructions, per-routine totals, and loop
annotations (nesting depth from :mod:`repro.eel.loops`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..eel.loops import LoopForest
from ..eel.routine import split_routines
from ..isa.simulator import RunResult
from .profiling import ProfiledProgram


@dataclass(frozen=True)
class BlockProfile:
    block_index: int
    address: int
    executions: int
    instructions: int
    loop_depth: int

    @property
    def dynamic_instructions(self) -> int:
        return self.executions * self.instructions


@dataclass(frozen=True)
class RoutineProfile:
    name: str
    executions: int
    dynamic_instructions: int


@dataclass
class Profile:
    """A digested profile: per-block and per-routine views."""

    blocks: list[BlockProfile]
    routines: list[RoutineProfile]

    @property
    def total_dynamic_instructions(self) -> int:
        return sum(b.dynamic_instructions for b in self.blocks)

    def hottest(self, count: int = 10) -> list[BlockProfile]:
        ranked = sorted(
            self.blocks, key=lambda b: b.dynamic_instructions, reverse=True
        )
        return ranked[:count]


def build_profile(profiled: ProfiledProgram, result: RunResult) -> Profile:
    """Digest counters from a run into a :class:`Profile`."""
    counts = profiled.block_counts(result)
    loops = LoopForest(profiled.cfg)
    blocks = [
        BlockProfile(
            block_index=block.index,
            address=block.address,
            executions=counts[block.index],
            instructions=block.instruction_count,
            loop_depth=loops.depth(block.index),
        )
        for block in profiled.cfg
    ]

    routines = []
    for routine in split_routines(profiled.original, profiled.cfg):
        indexes = routine.block_indexes
        routines.append(
            RoutineProfile(
                name=routine.name,
                executions=counts.get(routine.entry_block().index, 0),
                dynamic_instructions=sum(
                    b.dynamic_instructions for b in blocks if b.block_index in indexes
                ),
            )
        )
    routines.sort(key=lambda r: r.dynamic_instructions, reverse=True)
    return Profile(blocks=blocks, routines=routines)


def profile_report(
    profiled: ProfiledProgram, result: RunResult, *, top: int = 10
) -> str:
    """Render the classic text report."""
    profile = build_profile(profiled, result)
    total = profile.total_dynamic_instructions or 1

    lines = [
        f"dynamic instructions: {profile.total_dynamic_instructions:,}",
        "",
        f"hottest blocks (top {top}):",
        f"{'block':>6} {'address':>12} {'execs':>10} {'insts':>6} "
        f"{'share':>7} {'loop':>5}",
    ]
    for block in profile.hottest(top):
        share = block.dynamic_instructions / total
        lines.append(
            f"{block.block_index:>6} {block.address:#12x} "
            f"{block.executions:>10,} {block.instructions:>6} "
            f"{share:>7.1%} {'*' * block.loop_depth:>5}"
        )
    lines.append("")
    lines.append("routines:")
    for routine in profile.routines:
        share = routine.dynamic_instructions / total
        lines.append(
            f"  {routine.name:20s} {routine.dynamic_instructions:>12,} "
            f"({share:.1%}), entered {routine.executions:,} times"
        )
    return "\n".join(lines)
