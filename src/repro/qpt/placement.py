"""Instrumentation placement: which blocks get counters.

QPT2's slow profiling instruments "almost every basic block": "blocks
with a single instrumented single-exit predecessor or a single
instrumented single-entry successor are not instrumented" (§4.2) — their
counts equal a neighbour's and are reconstructed afterwards.

This is the degenerate, cheap corner of Ball–Larus optimal placement
[2]: a block pinched between it and a neighbour on an unconditional
edge must execute exactly as often as that neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eel.cfg import CFG, BasicBlock


@dataclass(frozen=True)
class PlacementPlan:
    """Which blocks carry counters, and how skipped counts derive."""

    instrumented: frozenset[int]
    #: skipped block -> the instrumented block with the same count.
    derived_from: dict[int, int] = field(default_factory=dict)

    def count_for(self, block_index: int, raw_counts: dict[int, int]) -> int:
        source = block_index
        seen = set()
        while source not in raw_counts:
            if source in seen:  # pragma: no cover - plan construction forbids cycles
                raise ValueError(f"cyclic derivation at block {source}")
            seen.add(source)
            source = self.derived_from[source]
        return raw_counts[source]

    def all_counts(self, raw_counts: dict[int, int], cfg: CFG) -> dict[int, int]:
        return {
            block.index: self.count_for(block.index, raw_counts) for block in cfg
        }


def plan_placement(cfg: CFG, *, skip_redundant: bool = True) -> PlacementPlan:
    """Choose counter placement for every block of ``cfg``."""
    if not skip_redundant:
        return PlacementPlan(instrumented=frozenset(b.index for b in cfg))

    instrumented: set[int] = set()
    derived: dict[int, int] = {}

    for block in cfg.blocks:
        source = _redundant_with(cfg, block, instrumented)
        if source is not None:
            derived[block.index] = source
        else:
            instrumented.add(block.index)

    return PlacementPlan(instrumented=frozenset(instrumented), derived_from=derived)


def _redundant_with(cfg: CFG, block: BasicBlock, instrumented: set[int]) -> int | None:
    """An already-instrumented block whose count provably equals
    ``block``'s, per the paper's two rules; None if the block needs its
    own counter."""
    # Rule 1: a single predecessor that is instrumented and has a single
    # exit — every execution of the predecessor flows here and nowhere
    # else, and nothing else flows here.
    if len(block.preds) == 1:
        pred = cfg.blocks[block.preds[0].src]
        if pred.index in instrumented and len(pred.succs) == 1:
            return pred.index
    # Rule 2: a single successor that is instrumented and has a single
    # entry. (Processing order means the successor is usually later and
    # not yet decided; this fires for back-edges.)
    if len(block.succs) == 1:
        succ = cfg.blocks[block.succs[0].dst]
        if succ.index in instrumented and len(succ.preds) == 1:
            return succ.index
    return None
