"""Counter storage for profiling instrumentation.

QPT's slow profiling gives every instrumented basic block a word-sized
execution counter in a dedicated data segment. The segment is appended
to the edited executable; after a (simulated) run the counters are read
back out of memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eel.image import Section, SectionKind
from ..isa.machine_state import Memory

#: Default base address for the counter segment, away from program data.
COUNTER_BASE = 0x0C00_0000


@dataclass
class CounterSegment:
    """Allocates one 32-bit counter per instrumented block."""

    base: int = COUNTER_BASE
    _slots: dict[int, int] = field(default_factory=dict)  # block index -> address

    def allocate(self, block_index: int) -> int:
        """The counter address for ``block_index`` (allocating it)."""
        if block_index not in self._slots:
            self._slots[block_index] = self.base + 4 * len(self._slots)
        return self._slots[block_index]

    def address_of(self, block_index: int) -> int:
        return self._slots[block_index]

    @property
    def size(self) -> int:
        return 4 * len(self._slots)

    @property
    def block_indexes(self) -> list[int]:
        return sorted(self._slots)

    def section(self, name: str = ".qpt_counters") -> Section:
        """A zero-initialized data section holding all counters."""
        return Section(name, SectionKind.DATA, self.base, data=b"\x00" * self.size)

    def read(self, memory: Memory) -> dict[int, int]:
        """Counter values per block index, from a post-run memory."""
        return {
            index: memory.read_word(address)
            for index, address in self._slots.items()
        }
