"""Error-checking instrumentation — the paper's production-code vision.

§5: "this approach promises to help reduce the cost of error checking,
such as array bounds or null pointer tests, to a level at which it may
routinely be included in production code."

:class:`NullCheckInstrumenter` guards every memory operation with a
straight-line null-base check. Straight-line matters: the scheduler only
handles branch-free instrumentation regions (§4), so instead of a
compare-and-trap the check *accumulates* violations with the SPARC
carry-flag idiom::

    subcc %base, 1, %g0     ! carry = (base unsigned< 1) = (base == 0)
    addx  %g7, 0, %g7       ! violation count += carry

``%g7`` (ABI-reserved) accumulates the count; a run ends with the number
of null-base dereferences that *would have* trapped. Because checks are
woven next to the memory operations they guard — not at block tops —
the tool is implemented as an editor transform, demonstrating the
transform API's second use beyond QPT profiling.

Caveat the dependence analyzer enforces automatically: every check
writes ``%icc``, so a check cannot migrate across the compare that feeds
a conditional branch; the scheduler's DAG keeps them ordered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eel.cfg import BasicBlock
from ..eel.editor import BlockTransform, Editor
from ..eel.executable import Executable
from ..isa.instruction import TAG_INSTRUMENTATION, Instruction
from ..isa.registers import Reg, r
from ..isa.simulator import RunResult

#: The violation accumulator: %g7 (SPARC ABI reserved).
VIOLATION_REG = r(7)


def null_check(base: Reg, counter: Reg = VIOLATION_REG) -> list[Instruction]:
    """The two-instruction straight-line null-base check."""
    return [
        Instruction("subcc", rd=r(0), rs1=base, imm=1).retag(TAG_INSTRUMENTATION),
        Instruction("addx", rd=counter, rs1=counter, imm=0).retag(
            TAG_INSTRUMENTATION
        ),
    ]


@dataclass
class CheckStats:
    memory_ops: int = 0
    checks_inserted: int = 0
    #: memory ops left unguarded because %icc was live at that point
    #: (a check there would corrupt a pending conditional branch).
    checks_skipped_icc_live: int = 0


@dataclass
class CheckedProgram:
    original: Executable
    executable: Executable
    stats: CheckStats

    def run(self, **kwargs) -> RunResult:
        return self.executable.run(**kwargs)

    @staticmethod
    def violations(result: RunResult) -> int:
        """Null-base dereferences observed during the run."""
        return result.state.get_reg(VIOLATION_REG.index)


class NullCheckInstrumenter:
    """Weave null-base checks in front of every load and store."""

    def __init__(self, executable: Executable, *, counter: Reg = VIOLATION_REG) -> None:
        self.executable = executable
        self.counter = counter
        self.stats = CheckStats()

    def _weave(self, block: BasicBlock, body: list[Instruction]) -> list[Instruction]:
        out: list[Instruction] = []
        for position, inst in enumerate(body):
            if inst.memory is not None and inst.rs1 is not None:
                self.stats.memory_ops += 1
                if inst.rs1.is_zero:
                    pass  # %g0-based address: statically null, uncheckable here
                elif self._icc_live_here(block, body, position):
                    self.stats.checks_skipped_icc_live += 1
                else:
                    out.extend(null_check(inst.rs1, self.counter))
                    self.stats.checks_inserted += 1
            out.append(inst)
        return out

    def _icc_live_here(
        self, block: BasicBlock, body: list[Instruction], position: int
    ) -> bool:
        """Would an %icc write at ``position`` be observed? True when
        some instruction from here to the block's end reads %icc before
        anything rewrites it (the check's subcc would corrupt it)."""
        from ..isa.registers import ICC

        tail = list(body[position:])
        if block.terminator is not None:
            tail.append(block.terminator)
        if block.delay is not None:
            tail.append(block.delay)
        for inst in tail:
            if ICC in inst.regs_read():
                return True
            if ICC in inst.regs_written():
                return False
        return False

    def instrument(self, schedule: BlockTransform | None = None) -> CheckedProgram:
        """Insert checks; optionally schedule them with the program."""

        def transform(block: BasicBlock, body: list[Instruction]):
            woven = self._weave(block, body)
            if schedule is None:
                return woven
            return schedule(block, woven)

        editor = Editor(self.executable)
        edited = editor.build(transform)
        return CheckedProgram(
            original=self.executable, executable=edited, stats=self.stats
        )
