"""QPT2 slow profiling: the instrumentation the paper schedules (§4.2).

Each instrumented block receives the classic four-instruction counter
increment — set immediate, load, add, store:

.. code-block:: asm

    sethi %hi(counter), %rA
    ld    [%rA + %lo(counter)], %rB
    add   %rB, 1, %rB
    st    %rB, [%rA + %lo(counter)]

Scratch registers come from EEL's liveness analysis when two integer
registers are dead across the block; otherwise QPT falls back to the
reserved registers (``%g6``/``%g7``, which SPARC ABIs set aside for
system software and compilers do not allocate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eel.cfg import CFG, build_cfg
from ..eel.editor import BlockTransform, Editor
from ..eel.executable import Executable
from ..eel.liveness import LivenessAnalysis
from ..isa.instruction import TAG_INSTRUMENTATION, Instruction
from ..isa.registers import Reg, r
from ..isa.simulator import RunResult
from ..isa import synth
from ..obs.recorder import NULL_RECORDER, Recorder
from .counters import COUNTER_BASE, CounterSegment
from .placement import PlacementPlan, plan_placement

#: SPARC ABI-reserved registers, QPT's fallback scratch pair.
RESERVED_SCRATCH = (r(6), r(7))  # %g6, %g7


def counter_snippet(counter_address: int, addr_reg: Reg, value_reg: Reg) -> list[Instruction]:
    """The 4-instruction slow-profiling sequence for one counter."""
    hi = synth.hi22(counter_address)
    lo = synth.lo10(counter_address)
    seq = [
        Instruction("sethi", rd=addr_reg, imm=hi),
        Instruction("ld", rd=value_reg, rs1=addr_reg, imm=lo),
        Instruction("add", rd=value_reg, rs1=value_reg, imm=1),
        Instruction("st", rd=value_reg, rs1=addr_reg, imm=lo),
    ]
    return [inst.retag(TAG_INSTRUMENTATION) for inst in seq]


@dataclass
class ProfiledProgram:
    """The output of instrumenting a program for block profiling."""

    original: Executable
    executable: Executable
    cfg: CFG
    plan: PlacementPlan
    counters: CounterSegment
    #: scratch registers chosen per instrumented block.
    scratch: dict[int, tuple[Reg, Reg]] = field(default_factory=dict)
    #: quarantine reports from a guarded transform
    #: (:class:`~repro.robust.guard.GuardedBlockScheduler`); empty when
    #: the transform was unguarded or every block verified.
    quarantine: tuple = ()
    #: the editor that produced ``executable``, kept so post-build
    #: analyses (:func:`repro.analyze.lint_profiled`) can see the merged
    #: block bodies with instrumentation tags intact.
    editor: object | None = None

    @property
    def added_instructions(self) -> int:
        return 4 * len(self.plan.instrumented)

    @property
    def text_expansion(self) -> float:
        """Text-size growth factor E (drives the Lebeck–Wood model)."""
        return self.executable.text_size / self.original.text_size

    def run(self, **kwargs) -> RunResult:
        return self.executable.run(**kwargs)

    def block_counts(self, result: RunResult) -> dict[int, int]:
        """Per-block execution counts (original block indexes), with
        skipped blocks reconstructed from their derivation source."""
        raw = self.counters.read(result.state.memory)
        return self.plan.all_counts(raw, self.cfg)


class SlowProfiler:
    """The QPT2 slow-profiling tool built on EEL (Figure 3)."""

    def __init__(
        self,
        executable: Executable,
        *,
        counter_base: int = COUNTER_BASE,
        skip_redundant: bool = True,
        use_liveness: bool = True,
        recorder: Recorder | None = None,
    ) -> None:
        self.executable = executable
        self.counter_base = counter_base
        self.skip_redundant = skip_redundant
        self.use_liveness = use_liveness
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    def instrument(self, transform: BlockTransform | None = None) -> ProfiledProgram:
        """Insert counters into every planned block and build the new
        executable; ``transform`` (typically a
        :class:`~repro.core.block_scheduler.BlockScheduler`) schedules
        each block as it is laid out."""
        rec = self.recorder
        editor = Editor(self.executable, recorder=rec)
        cfg = editor.cfg
        with rec.span("qpt.placement"):
            plan = plan_placement(cfg, skip_redundant=self.skip_redundant)
        counters = CounterSegment(base=self.counter_base)
        liveness = None
        if self.use_liveness:
            with rec.span("qpt.liveness"):
                liveness = LivenessAnalysis(cfg)
        scratch: dict[int, tuple[Reg, Reg]] = {}

        with rec.span("qpt.insert_counters"):
            for index in sorted(plan.instrumented):
                block = cfg.blocks[index]
                address = counters.allocate(index)
                regs = self._pick_scratch(liveness, block)
                scratch[index] = regs
                editor.insert_before(block, counter_snippet(address, *regs))

        editor.add_data_section(counters.section())
        edited = editor.build(transform)
        return ProfiledProgram(
            original=self.executable,
            executable=edited,
            cfg=cfg,
            plan=plan,
            counters=counters,
            scratch=scratch,
            quarantine=tuple(getattr(transform, "quarantine", ())),
            editor=editor,
        )

    def _pick_scratch(self, liveness: LivenessAnalysis | None, block) -> tuple[Reg, Reg]:
        # Neighbouring blocks alternate between the reserved pair and a
        # liveness-chosen pair disjoint from it: when the superblock
        # scheduler merges adjacent blocks, their counter chains then
        # share no registers, so (with the static counter-address
        # disambiguation in repro.core.dependence) the two chains can
        # overlap instead of serializing on a false WAR/WAW dependence.
        if block.index % 2 or liveness is None:
            return RESERVED_SCRATCH
        avoid = frozenset(RESERVED_SCRATCH)
        dead = liveness.dead_integer_registers(block, count=2, avoid=avoid)
        if len(dead) == 2:
            return (dead[0], dead[1])
        return RESERVED_SCRATCH
