"""QPT2 slow profiling — the instrumentation workload of §4.2."""

from .counters import COUNTER_BASE, CounterSegment
from .placement import PlacementPlan, plan_placement
from .profiling import (
    RESERVED_SCRATCH,
    ProfiledProgram,
    SlowProfiler,
    counter_snippet,
)
from .fastprofile import (
    FastProfileError,
    FastProfiledProgram,
    FastProfiler,
    FlowEdge,
)
from .errorcheck import (
    CheckStats,
    CheckedProgram,
    NullCheckInstrumenter,
    VIOLATION_REG,
    null_check,
)
from .reports import BlockProfile, Profile, RoutineProfile, build_profile, profile_report

__all__ = [
    "BlockProfile",
    "COUNTER_BASE",
    "CheckStats",
    "CheckedProgram",
    "CounterSegment",
    "FastProfileError",
    "FastProfiledProgram",
    "FastProfiler",
    "FlowEdge",
    "NullCheckInstrumenter",
    "VIOLATION_REG",
    "null_check",
    "PlacementPlan",
    "Profile",
    "ProfiledProgram",
    "RESERVED_SCRATCH",
    "RoutineProfile",
    "SlowProfiler",
    "build_profile",
    "counter_snippet",
    "plan_placement",
    "profile_report",
]
